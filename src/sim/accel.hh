/**
 * @file
 * Cycle-level simulator of a TAPAS-generated accelerator.
 *
 * The simulated microarchitecture follows the paper exactly at the
 * component level (Sections III-A..III-E, Figs. 3-8):
 *
 *  - one TaskUnit per static task: a task queue of Ntasks entries
 *    (states READY / EXE / SYNC / WAIT-CALL / COMPLETE, per Fig. 5),
 *    spawn/sync ports with one-accept-per-cycle arbitration, and
 *    Ntiles task-execution tiles;
 *  - each tile is a pipelined TXU executing the task's dataflow with
 *    latency-insensitive ready-valid firing: a node fires when its
 *    in-block producers are done, each static node accepts one new
 *    token per cycle (II = 1 per function unit), and multiple task
 *    instances overlap in the pipeline up to tilePipelineDepth;
 *  - per-tile data boxes arbitrate memory operations into the shared
 *    L1 cache, which models finite MSHRs and an AXI/DRAM channel;
 *  - spawns marshal the child's live-in arguments through the target
 *    unit's args RAM (spawnHandshake + cycles-per-arg), parent/child
 *    join uses the (SID, DyID) scheme of Fig. 5: detach-spawned
 *    children decrement the parent entry's child counter; task-call
 *    children route their return value back to the waiting call node;
 *  - a task instance blocked at a sync (children pending) or on a
 *    task call vacates its tile and waits in the queue, which is what
 *    allows unbounded-depth recursion without deadlocking the TXUs
 *    (paper Section IV-C); queue capacity then bounds the practical
 *    recursion depth, exactly as on the real hardware.
 *
 * Functional execution is exact: every fired node computes its real
 * value against the shared MemImage, so a simulation both measures
 * cycles and produces the program's actual output (verified against
 * the reference interpreter by the tests).
 */

#ifndef TAPAS_SIM_ACCEL_HH
#define TAPAS_SIM_ACCEL_HH

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "arch/firing_index.hh"
#include "support/cancel.hh"
#include "hls/compile.hh"
#include "ir/interp.hh"
#include "obs/profiler.hh"
#include "obs/sink.hh"
#include "sim/calendar.hh"
#include "sim/databox.hh"
#include "sim/fault.hh"
#include "sim/trace.hh"

namespace tapas::sim {

class AcceleratorSim;
class TaskUnit;

/**
 * Cycle-loop scheduling policy. Both produce byte-identical results
 * (cycle counts, stats, observability streams — pinned by
 * tests/sim_sched_test.cc); they differ only in host work per
 * simulated cycle.
 *
 *  - Scan: the original loop — every tile of every unit is visited
 *    every processed cycle, plus the whole-machine idle-skip jump.
 *  - Event: additionally puts *individual* tiles to sleep when their
 *    next possible state change is provably in the future, settling
 *    their stall/residency accounting in bulk on wake-up, and feeds
 *    the known wake cycles into a WakeupCalendar so the idle-skip
 *    jump is a calendar lookup instead of a full rescan.
 */
enum class Scheduler : uint8_t {
    Scan,  ///< legacy full scan each cycle
    Event, ///< active tiles only + wakeup calendar (default)
};

/** Result of presenting a spawn to a unit's spawn port. */
enum class SpawnOutcome : uint8_t {
    Accepted, ///< enqueued; the child will run
    Rejected, ///< port busy or queue full; retry next cycle
    Dropped,  ///< injected fault ate the handshake; retry w/ backoff
};

/** Dynamic task identity: (SID, DyID) of paper Fig. 5. */
struct TaskRef
{
    static constexpr unsigned kNone = ~0u;

    unsigned sid = kNone;
    unsigned slot = 0;

    bool valid() const { return sid != kNone; }
};

/** One TXU tile: data box + per-cycle firing bookkeeping. */
struct Tile
{
    Tile(SharedCache &cache, unsigned staging, unsigned issue_width,
         unsigned firing_slots, std::string name)
        : box(cache, staging, issue_width, std::move(name)),
          firedMark(firing_slots, 0)
    {}

    DataBox box;

    /** Slots of the instances currently in this tile's pipeline. */
    std::vector<unsigned> active;

    /**
     * Per-firing-slot generation stamp: slot `s` accepted a token in
     * cycle `c` iff firedMark[s] == c + 1 (0 = never). Stamping with
     * the cycle number replaces the per-cycle clear of the old
     * instruction-pointer set — stale stamps can never match the
     * current cycle. Indexed by arch::FiringIndex slot.
     */
    std::vector<uint64_t> firedMark;

    /** Tokens accepted this cycle (profiler's fired_any signal). */
    unsigned firedThisCycle = 0;

    /** Injected transient freeze: no firing until this cycle. */
    uint64_t stuckUntil = 0;

    /** Forget all firing history (start of a run()). */
    void
    resetFiring()
    {
        firedMark.assign(firedMark.size(), 0);
        firedThisCycle = 0;
        box.resetStallWitness();
    }
};

/**
 * Executes one dynamic task instance over the task's dataflow.
 * Owned by a queue entry; attached to a tile while in state EXE.
 */
class InstanceExec
{
  public:
    enum class Status : uint8_t {
        Running,   ///< making progress (or stalled on memory/spawn)
        WaitSync,  ///< blocked at sync with children outstanding
        WaitCall,  ///< blocked on a task call's return value
        Done,      ///< task completed (join the parent)
    };

    InstanceExec(AcceleratorSim &sim, const arch::Task &task,
                 const arch::FiringIndex &fidx, TaskRef self);

    /** Provide the marshaled arguments; instance becomes runnable. */
    void start(const std::vector<ir::RtValue> &args);

    /**
     * Return to the freshly-constructed state while keeping every
     * buffer's capacity: queue entries pool one InstanceExec per slot
     * and reset it on reuse instead of reallocating frames, register
     * files and node-state vectors per spawn.
     */
    void reset();

    /** Advance one cycle on the given tile. */
    Status step(uint64_t now, Tile &tile);

    /** Deliver a task-call return value (wakes a WaitCall). */
    void deliverCallResult(const ir::CallInst *site, ir::RtValue v);

    /** Return value produced by the task's Ret (function tasks). */
    ir::RtValue returnValue() const { return retVal; }

    /** Outstanding memory requests (suspension is deferred on >0). */
    unsigned outstandingMem() const { return memInFlight; }

    /** Dynamic nodes fired so far (stats). */
    uint64_t firedCount() const { return firedNodes; }

    /**
     * Count in-flight nodes by phase across every live frame:
     * executing (fixed-latency ops), waiting on memory tickets, and
     * retrying a back-pressured spawn. Used by the cycle-attribution
     * profiler to classify a unit's cycle.
     */
    void phaseCensus(unsigned &exec, unsigned &mem,
                     unsigned &spawn) const;

    /**
     * Idle-skip wake computation: the earliest future cycle at which
     * this instance's internal timers can change its state, assuming
     * the current cycle made no progress anywhere.
     *
     * Returns 0 when the instance must be ticked next cycle (a block
     * not yet swept, a spawn re-presenting under back-pressure, an
     * unissued memory request, a delivered-but-unconsumed call
     * result), or kNoWake when it holds no timer at all (blocked
     * purely on external progress — a sync join or call return,
     * which the unit owning the child provides at its own wake).
     *
     * With `spawn_waits` non-null, a spawn re-presenting under
     * ordinary back-pressure (no drop streak, rejected this very
     * cycle) pushes its target task sid there instead of vetoing:
     * the caller may sleep the tile as a registered spawn-waiter,
     * provided the target queue is full and pokes it on every entry
     * free (see TaskUnit::pokeSpawnWaiters).
     */
    uint64_t nextWake(uint64_t now, const DataBox &box,
                      bool allow_bulk,
                      std::vector<unsigned> *spawn_waits
                      = nullptr) const;

    /** nextWake() sentinel: no internal timer. */
    static constexpr uint64_t kNoWake = ~0ull;

  private:
    enum class Phase : uint8_t {
        Waiting,
        Exec,       ///< fixed latency, completes at doneAt
        Mem,        ///< waiting on a data-box ticket
        SpawnRetry, ///< spawn target busy/full; retry
        SyncWait,
        CallWait,
        LeafCall,   ///< a callee frame is executing
        DoneNode,
    };

    struct NodeState
    {
        Phase phase = Phase::Waiting;
        uint64_t doneAt = 0;
        MemTicket ticket = 0;
        bool callDelivered = false;
        ir::RtValue callValue;

        /** Earliest cycle a SpawnRetry node re-presents its spawn. */
        uint64_t nextRetryAt = 0;

        /** Consecutive dropped handshakes (backoff exponent). */
        unsigned spawnDropStreak = 0;
    };

    /** One activation record: the task body or an inlined leaf call. */
    struct Frame
    {
        const ir::Function *func = nullptr;
        std::vector<ir::RtValue> regs;     // by instruction id
        std::vector<ir::RtValue> argVals;  // leaf formals
        const ir::CallInst *returnTo = nullptr; // caller's call inst
        const ir::BasicBlock *bb = nullptr;
        const ir::BasicBlock *prev = nullptr;
        std::vector<NodeState> nst;        // per instruction in bb

        /** FiringIndex base of `func` (firing slot = base + id). */
        unsigned fireBase = 0;

        /**
         * Set by enterBlock(), cleared by step()'s first sweep over
         * the new block. A fresh block's nodes are fireable without
         * any timer expiring, so idle-skip must not engage while one
         * exists (nextWake() returns 0).
         */
        bool fresh = true;

        // Lowered-execution mirror state (null in legacy mode): the
        // decoded function/block plus the per-function resolved
        // constant pool (ir/lower.hh). bb/prev stay maintained in
        // both modes so the cold paths (wake computation, call
        // delivery, diagnostics) are shared.
        const ir::LoweredFunc *lf = nullptr;
        const ir::LoweredBlock *lbb = nullptr;
        const ir::RtValue *pool = nullptr;
        uint32_t prevId = ir::kNoSucc;

        /**
         * Nodes of the current block in DoneNode phase, maintained
         * on every transition. The lowered sweep's block-completion
         * and terminator-quiescence checks read this instead of
         * rescanning nst; the legacy path keeps the scans, so the
         * differential suite cross-validates the counter.
         */
        uint32_t doneCount = 0;
    };

    ir::RtValue evalOperand(const Frame &frame, const ir::Value *v);

    /** Lowered operand fetch: indexed load + 2-bit tag switch. */
    ir::RtValue evalRef(const Frame &frame, ir::OperandRef r) const;

    void enterBlock(Frame &frame, const ir::BasicBlock *bb,
                    uint64_t now);

    /** Try to fire one waiting node; returns false if deps pending. */
    bool tryFire(Frame &frame, size_t idx, uint64_t now, Tile &tile);

    /**
     * Lowered twin of tryFire()'s execute stage: fires node `idx`
     * from the MicroOp table. The dependence/quiescence gate lives
     * inline in stepL(); this only re-checks the per-cycle firing
     * token and may still back off (memory submit reject).
     */
    void fireL(Frame &frame, size_t idx, const ir::MicroOp &mop,
               uint64_t now, Tile &tile);

    /**
     * Lowered sweep: step()'s per-node loop specialized to the
     * decoded tables — inline dependence gate, inline Exec/Mem
     * advance, doneCount-based block completion. Rare phases
     * (SpawnRetry, CallWait) delegate to the shared advanceNode().
     */
    Status stepL(Frame &frame, uint64_t now, Tile &tile);

    /**
     * Fill spawnScratch with the marshaled arguments of the child
     * spawned by the Detach at node `idx` (template refs when
     * lowered, the child's live-in list otherwise).
     */
    void marshalDetachArgs(Frame &frame, size_t idx,
                           const arch::Task &child);

    /** Fill spawnScratch with the actuals of the Call at node `idx`. */
    void marshalCallArgs(Frame &frame, size_t idx,
                         const ir::CallInst *call);

    /** Enter/extend SpawnRetry after a Rejected/Dropped spawn. */
    void noteSpawnFailure(NodeState &st, SpawnOutcome oc,
                          uint64_t now);

    /** Progress a fired node toward completion. */
    void advanceNode(Frame &frame, size_t idx, uint64_t now,
                     Tile &tile);

    /** All non-phi nodes of the current block are done. */
    bool blockDone(const Frame &frame) const;

    /** Handle a completed terminator: block transition / task end. */
    Status finishBlock(uint64_t now);

    /** Push a leaf-call frame; actuals are taken from spawnScratch. */
    void pushLeafFrame(const ir::CallInst *call, uint64_t now);

    /**
     * Live top frame / frame-pool allocation. frames[0..nFrames) are
     * live; popped frames stay in the deque with their buffer
     * capacities intact and are recycled by acquireFrame().
     */
    Frame &topFrame() { return frames[nFrames - 1]; }
    Frame &acquireFrame();

    AcceleratorSim &sim;
    const arch::Task &task;
    const arch::FiringIndex &fidx;
    TaskRef self;

    /**
     * Marshaled arguments, resolved to dense slots at start():
     * ir::Argument formals land in taskArgVals by argument index;
     * enclosing-task ir::Instruction values land directly in the task
     * frame's regs (their ids never collide with instructions the
     * task executes — ids are function-wide and those producers live
     * outside the task's blocks). argInstMark flags the latter so the
     * dependence check can tell "marshaled live-in" from "produced
     * here" in O(1); taskArgPresent backs the unmarshaled-use assert.
     */
    std::vector<ir::RtValue> taskArgVals;
    std::vector<uint8_t> taskArgPresent;
    std::vector<uint8_t> argInstMark;

    /**
     * Activation-record stack. A deque, not a vector: tryFire() can
     * push a leaf-call frame while step() still holds a reference to
     * the current frame, and deque growth never invalidates
     * references to existing elements. Only frames[0..nFrames) are
     * live; the tail holds recycled frames (see acquireFrame()).
     */
    std::deque<Frame> frames;
    size_t nFrames = 0;

    /** enterBlock() phi-resolution scratch (hoisted allocation). */
    std::vector<ir::RtValue> phiScratch;

    /** Spawn/call argument marshaling scratch (hoisted allocation). */
    std::vector<ir::RtValue> spawnScratch;

    /** Decoded program when lowered execution is active, else null. */
    const ir::LoweredProgram *low = nullptr;

    /** Decoded form of `task`'s function (null in legacy mode). */
    const ir::LoweredFunc *taskLf = nullptr;

    ir::RtValue retVal;
    bool done = false;
    unsigned memInFlight = 0;
    uint64_t firedNodes = 0;
};

/** Task-queue entry states (paper Fig. 5). */
enum class EntryState : uint8_t {
    Free,
    Ready,    ///< spawned / woken, not allocated a tile
    Exe,      ///< attached to a tile
    Sync,     ///< vacated tile, waiting for child join counter
    WaitCall, ///< vacated tile, waiting for a task-call return
};

/** One task unit: queue + tiles + ports (paper Fig. 3 bottom). */
class TaskUnit
{
  public:
    TaskUnit(AcceleratorSim &sim, const arch::Task &task,
             const arch::Dataflow &df,
             const arch::TaskUnitParams &params, SharedCache &cache);

    /**
     * Spawn-port arbitration: accept at most one spawn per cycle and
     * only while a queue entry is free. With a fault injector
     * attached the handshake itself may be dropped (the spawner
     * retries with backoff).
     */
    SpawnOutcome trySpawn(const std::vector<ir::RtValue> &args,
                          TaskRef parent,
                          const ir::CallInst *caller_site,
                          uint64_t now);

    void beginCycle(uint64_t now);
    void tick(uint64_t now);

    /**
     * An injected bit flip hit this unit's queue RAM: corrupt the
     * checksum of a randomly chosen not-yet-dispatched entry. Flips
     * landing on empty or executing entries are absorbed (those bits
     * live in tile flip-flops, not the ECC-guarded queue BRAM).
     */
    void injectQueueCorruption(uint64_t now, FaultInjector &inj);

    /** Entry counts per state [Free,Ready,Exe,Sync,WaitCall]. */
    std::array<unsigned, 5> stateCounts() const;

    /** A detach-spawned child of `slot` finished. */
    void childJoined(unsigned slot, uint64_t now);

    /** A task-called child of `slot` returned `v` for `site`. */
    void callReturned(unsigned slot, const ir::CallInst *site,
                      ir::RtValue v, uint64_t now);

    /** Child-counter increment when `slot` spawns. */
    void noteChildSpawned(unsigned slot);

    /** Current child join counter of `slot` (sync resolution). */
    int childCountOf(unsigned slot) const
    {
        return entries.at(slot).childCount;
    }

    bool idle() const { return occupied == 0; }

    const arch::Task &task() const { return _task; }

    /** Entries currently not Free (tests/stats); O(1). */
    unsigned occupancy() const { return occupied; }

    /**
     * Idle-skip wake computation over the whole unit: the earliest
     * future cycle at which a dispatch or an on-tile instance timer
     * can make progress, assuming the current cycle was quiet. 0
     * means the unit must be ticked every cycle (pending issue-queue
     * work, a dispatchable entry, a spawn under back-pressure);
     * InstanceExec::kNoWake means the unit holds no timers.
     */
    uint64_t nextWake(uint64_t now, bool allow_stall_bulk) const;

    /**
     * Account `n` skipped quiet cycles: per-tile busy-cycle counters
     * and (when a profiler is attached) bulk cycle attribution in the
     * same bucket profileCycle() would have picked each cycle, so the
     * "buckets sum to cycles x units" invariant survives skipping.
     */
    void accountSkipped(uint64_t n, uint64_t base);

    /** Zero the tiles' firing stamps (start of a run()). */
    void
    resetFiring()
    {
        for (auto &t : tiles)
            t->resetFiring();
        spawnRejectCycle = ~0ull;
        spawnRejectsThisCycle = 0;
        resetSleep();
    }

    /** Wake every sleeping tile without settling (start of a run). */
    void
    resetSleep()
    {
        tileSleepUntil.assign(tiles.size(), 0);
        tileSleepBase.assign(tiles.size(), 0);
        tileSpawnWaits.assign(tiles.size(), {});
        spawnWaiters.clear();
        sleepingTiles = 0;
        tileSlept = 0;
        tickCycle = ~0ull;
        tickTilePos = 0;
    }

    /** Tiles currently asleep under the event scheduler (tests). */
    unsigned sleepingTileCount() const { return sleepingTiles; }

    /**
     * Tile-cycles covered by sleep spans instead of per-cycle ticks.
     * Diagnostic only — deliberately NOT a stats Counter, so modeled
     * results stay byte-identical across schedulers.
     */
    uint64_t tileSleptCycles() const { return tileSlept; }

    /**
     * End-of-run settle: close out every still-sleeping tile through
     * `upto` (the last processed cycle). The run may end — root
     * retire, failure, interrupt — while a tile is mid-span; scan
     * mode would have ticked it quietly through that cycle, so its
     * bulk accounting must land before stats are read.
     */
    void
    settleAllSleeping(uint64_t upto)
    {
        for (size_t ti = 0; ti < tiles.size(); ++ti) {
            if (tileSleepUntil[ti] != 0)
                settleTile(static_cast<unsigned>(ti), upto);
        }
    }

    // --- statistics ---------------------------------------------------

    StatGroup stats;
    Counter spawnsAccepted{stats, "spawns", "task instances enqueued"};
    Counter spawnRejects{stats, "spawn_rejects",
                         "spawns rejected (port busy or queue full)"};
    Counter instancesDone{stats, "completed", "task instances retired"};
    Counter tileBusyCycles{stats, "tile_busy_cycles",
                           "cycles x tiles with >=1 active instance"};
    Counter syncSuspends{stats, "sync_suspends",
                         "instances that vacated a tile at a sync"};
    Counter callSuspends{stats, "call_suspends",
                         "instances that vacated a tile on a task call"};
    Scalar avgSpawnToDispatch{stats, "spawn_to_dispatch",
                              "avg cycles from spawn to tile dispatch"};

  private:
    struct QueueEntry
    {
        EntryState state = EntryState::Free;
        std::unique_ptr<InstanceExec> exec;
        TaskRef parent;
        const ir::CallInst *callerSite = nullptr;
        int childCount = 0;
        uint64_t readyAt = 0;     ///< args-RAM transfer completion
        uint64_t spawnedAt = 0;
        int tile = -1;
        bool everDispatched = false; ///< spawn-latency sampling

        // Residency stall attribution (counted only while a trace
        // sink is attached — see residencyStalls()): cycles of the
        // current tile residency in which the instance fired nothing
        // and every in-flight node was blocked on memory / a spawn.
        uint64_t residMem = 0;
        uint64_t residSpawn = 0;

        // Fault-tolerance state (populated only with an injector):
        // a golden copy of the marshaled arguments, the checksum the
        // queue RAM is supposed to hold (models ECC), and how many
        // replays this instance has burned from its retry budget.
        std::vector<ir::RtValue> savedArgs;
        uint32_t checksum = 0;
        unsigned faultRetries = 0;
    };

    /** Checksum over an entry's marshaled arguments (models ECC). */
    static uint32_t argsChecksum(const std::vector<ir::RtValue> &args,
                                 unsigned sid, unsigned slot);

    /**
     * Dispatch-time checksum verification: on mismatch re-marshal
     * and re-enqueue the instance (or fail the run once the retry
     * budget is gone). Returns false when the entry was consumed by
     * recovery and must not dispatch this cycle.
     */
    bool verifyEntryChecksum(unsigned slot, uint64_t now);

    void dispatch(uint64_t now);
    void retire(unsigned slot, uint64_t now);
    void detachFromTile(unsigned slot);

    // --- event-scheduler tile sleep ------------------------------------

    /**
     * Earliest future cycle at which the given (quiet this cycle)
     * tile can possibly change state: the min over its data box's
     * stall wake and every resident instance's internal timers.
     * Returns 0 when the tile must be ticked next cycle,
     * InstanceExec::kNoWake when it holds no timer at all (empty, or
     * every resident blocked purely on an external poke).
     *
     * Side effect: fills waitScratch with the target sid of every
     * resident spawn retry that is sleepable only as a spawn-waiter
     * (one entry per retrying node). On a nonzero return the caller
     * must register those waits before sleeping the tile.
     */
    uint64_t tileWake(const Tile &tile, uint64_t now);

    /**
     * Close out a sleeping tile's skipped span: bulk-account the
     * quiet cycles (sleepBase, upto] exactly as scan mode would have
     * accrued them one by one — tile-busy counters plus the data
     * box's stall/retry witnesses — then mark the tile awake. The
     * tile's next real tick restamps every witness.
     */
    void settleTile(unsigned t, uint64_t upto);

    /**
     * External poke (dispatch, child join, call return) landing on a
     * possibly-sleeping tile at cycle `now`. No-op when awake.
     * Settles through `now` when the tile's position in this cycle's
     * tile loop has already passed (scan mode would have ticked it
     * quietly before the poke arrived, and it reacts next cycle),
     * through `now - 1` otherwise (it still gets its step this
     * cycle, in scan order).
     */
    void wakeTileForPoke(unsigned t, uint64_t now);

    /** No free entry in the task queue (spawns reject queue-full). */
    bool queueFull() const
    {
        return occupied >= static_cast<unsigned>(entries.size());
    }

    /**
     * Register the just-slept tile `t` as a spawn-waiter on every
     * target collected in waitScratch (aggregated per target with a
     * retrying-node count). Each registered target pokes the tile
     * whenever one of its queue entries frees — the only event that
     * can turn the repeating queue-full rejection into an accept.
     * Also pulls this tile's rejects back out of the targets' skip
     * witnesses: from now on the settle credit accounts them.
     */
    void registerSpawnWaits(unsigned t, uint64_t now);

    /**
     * An entry of THIS unit's queue just freed (retire): wake every
     * registered spawn-waiter tile so its next re-present runs live
     * and can take the slot in scan order.
     */
    void pokeSpawnWaiters(uint64_t now);

    /** SoA per-tile sleep state: wake cycle (0 = awake)... */
    std::vector<uint64_t> tileSleepUntil;
    /** ...and the last cycle the tile actually ticked. */
    std::vector<uint64_t> tileSleepBase;

    /**
     * Spawn-waiter registry: (unit, tile) pairs — possibly of other
     * units — sleeping on this unit's queue being full. Registered
     * by registerSpawnWaits(), poked by pokeSpawnWaiters(), torn
     * down by the waiter's settleTile().
     */
    std::vector<std::pair<TaskUnit *, unsigned>> spawnWaiters;

    /** Per sleeping tile: (target sid, retrying-node count) pairs it
        is spawn-waiting on; the count drives the settle-time
        queue-full reject credit on the target. */
    std::vector<std::vector<std::pair<unsigned, unsigned>>>
        tileSpawnWaits;

    /** tileWake() spawn-target scratch (hoisted alloc). */
    std::vector<unsigned> waitScratch;

    /** pokeSpawnWaiters() scratch: pokes settle waiters, which
        unregisters them mid-iteration, so it drains a copy. */
    std::vector<std::pair<TaskUnit *, unsigned>> pokeScratch;

    /** Count of nonzero tileSleepUntil entries. */
    unsigned sleepingTiles = 0;

    /** Lifetime tile-cycles settled from sleep spans (diagnostic). */
    uint64_t tileSlept = 0;

    /** May tick() put quiet tiles to sleep? (set by run()) */
    bool eventSleep = false;

    /**
     * Where this cycle's tile loop currently stands: tick() stamps
     * tickCycle on entry and tickTilePos before processing each tile
     * (tiles.size() once the loop is done). wakeTileForPoke() uses
     * the pair to decide whether a same-cycle poke arrived before or
     * after the target tile's position in scan order.
     */
    uint64_t tickCycle = ~0ull;
    size_t tickTilePos = 0;

    /** Attribute this cycle to a profiler bucket (profiler only). */
    void profileCycle(uint64_t now);

    /**
     * Shared classification core of profileCycle()/accountSkipped():
     * which bucket does this unit's current state land in, given
     * whether any token fired? Quiet (skipped) cycles pass false.
     */
    obs::CycleBucket classifyCycle(bool fired_any) const;

    AcceleratorSim &sim;
    const arch::Task &_task;
    const arch::Dataflow &df;
    arch::TaskUnitParams params;

    /** Dense firing-slot assignment for this task's instructions. */
    arch::FiringIndex fidx;

    std::vector<QueueEntry> entries;
    std::vector<std::unique_ptr<Tile>> tiles;
    std::deque<unsigned> readyQueue;
    bool spawnAcceptedThisCycle = false;
    bool dispatchedThisCycle = false;

    // Stall-span witness for the idle-cycle fast-forward: how many
    // spawns this unit rejected queue-full in the current cycle.
    // Each corresponds to a spawner re-presenting every cycle, so a
    // skipped span multiplies them (see accountSkipped()).
    uint64_t spawnRejectCycle = ~0ull;
    unsigned spawnRejectsThisCycle = 0;

    /** Entries not Free, maintained at spawn/retire (O(1) queries). */
    unsigned occupied = 0;

    /** tick()'s per-tile copy of the active list (hoisted alloc). */
    std::vector<unsigned> stepScratch;

    uint64_t dispatchLatSum = 0;
    uint64_t dispatchCount = 0;

    friend class AcceleratorSim;
};

/** The whole accelerator: units + shared memory system. */
class AcceleratorSim
{
  public:
    /**
     * @param design the compiled accelerator
     * @param mem shared functional memory (globals already laid out)
     */
    AcceleratorSim(const hls::AcceleratorDesign &design,
                   ir::MemImage &mem);

    /**
     * Run the accelerator: spawn the root task with `top_args` and
     * simulate until it completes — or until it fails. A run that
     * deadlocks, exceeds maxCycles, or exhausts a fault-retry budget
     * does NOT abort the process: it returns (a zero RtValue) with
     * failure() populated, including a per-unit diagnostic dump.
     *
     * @return the root task's return value (zero on failure)
     */
    ir::RtValue run(const std::vector<ir::RtValue> &top_args);

    /** How the last run() ended (kind None means success). */
    const SimFailure &failure() const { return failure_; }

    /**
     * Record a failure; the main loop stops at the next cycle
     * boundary. First failure wins.
     */
    void
    reportFailure(SimFailure::Kind kind, std::string detail)
    {
        if (!failure_.failed())
            failure_ = SimFailure{kind, std::move(detail)};
    }

    /** Cycles consumed by the last run(). */
    uint64_t cycles() const { return _cycles; }

    /**
     * Progress events observed so far (spawns, firings, completions,
     * joins). A host-side measure of how much simulation work a run
     * performed — the numerator of bench/sim_throughput's
     * events-per-host-second metric. Monotonic across runs.
     */
    uint64_t progressCount() const { return progressEvents; }

    /** Total dynamic spawns across all units in the last run. */
    uint64_t totalSpawns() const;

    /** Simulated seconds for the last run at `mhz`. */
    double
    seconds(double mhz) const
    {
        return static_cast<double>(_cycles) / (mhz * 1e6);
    }

    // --- services used by InstanceExec / TaskUnit ----------------------

    /** Route a spawn to a unit (non-Accepted => spawner retries). */
    SpawnOutcome spawnTask(unsigned sid,
                           const std::vector<ir::RtValue> &args,
                           TaskRef parent,
                           const ir::CallInst *caller_site,
                           uint64_t now);

    /** Child of `parent` joined (detach join). */
    void notifyChildDone(TaskRef parent, uint64_t now);

    /** Task-called child returned a value to `parent` at `site`. */
    void notifyCallDone(TaskRef parent, const ir::CallInst *site,
                        ir::RtValue v, uint64_t now);

    /**
     * Record a known-future tile wake in the calendar (event
     * scheduler). Hints only: a stale or early entry costs one
     * processed quiet cycle, never correctness.
     */
    void
    scheduleWake(uint64_t cycle)
    {
        calendar.schedule(cycle);
    }

    /** Root task finished. */
    void rootDone(ir::RtValue v);

    /** Something happened; feeds the deadlock watchdog. */
    void progressEvent() { ++progressEvents; }

    /**
     * Un-count a speculative firing that turned out not to happen: a
     * load/store whose data-box submit was rejected retracts the
     * progressEvent() its tryFire charged up front (exec.cc). A
     * retry-every-cycle stall thus counts zero progress — the event
     * stream measures activity, not attempts — which is what lets
     * the event scheduler sleep a tile that is only being rejected,
     * and keeps the watchdog an honest no-forward-progress detector.
     */
    void retractProgressEvent() { --progressEvents; }

    // --- observability -------------------------------------------------

    /** Unit name / tile-count descriptors, in sid order. */
    std::vector<obs::UnitInfo> unitInfos() const;

    /**
     * Attach a trace sink; it receives configure() immediately and
     * every observability event until removeSink(). The sink must
     * outlive the simulation (the sim does not take ownership).
     */
    void addSink(obs::TraceSink *sink);

    /** Detach a previously attached sink (no-op if absent). */
    void removeSink(obs::TraceSink *sink);

    /**
     * Attach (or detach, with nullptr) a task-lifetime tracer.
     * Convenience wrapper over addSink()/removeSink() kept for the
     * pre-obs API.
     */
    void setTracer(TaskTracer *t);

    /**
     * Attach (or detach, with nullptr) a cycle-attribution profiler;
     * it is configured with the unit list immediately. While attached,
     * every unit classifies each simulated cycle into exactly one
     * CycleBucket, so bucket totals sum to cycles() x numUnits.
     */
    void setProfiler(obs::CycleProfiler *p);

    /** Attached profiler, or nullptr. */
    obs::CycleProfiler *profiler() { return prof; }

    /**
     * Attach (or detach, with nullptr) a fault injector; it also
     * hooks the shared cache. Not owned; must outlive the run.
     * Attach before run(): mid-run attachment misses the checksum
     * baseline of already-queued entries.
     */
    void
    setFaultInjector(FaultInjector *f)
    {
        faultInj = f;
        cache.setFaultInjector(f);
    }

    /** Attached fault injector, or nullptr. */
    FaultInjector *faultInjector() { return faultInj; }

    void
    emitFault(uint64_t cycle, const char *kind, unsigned sid)
    {
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks)
            s->faultInjected(cycle, kind, sid);
    }

    void
    emitRecovery(uint64_t cycle, const char *kind, unsigned sid)
    {
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks)
            s->faultRecovered(cycle, kind, sid);
    }

    /** Any trace sink attached? (skip event bookkeeping if not) */
    bool observed() const { return hasSinks; }

    void
    emitSpawn(uint64_t cycle, unsigned sid, unsigned slot,
              TaskRef parent)
    {
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks) {
            s->taskSpawn(cycle, sid, slot,
                         parent.valid() ? parent.sid : ~0u,
                         parent.slot);
        }
    }

    void
    emitDispatch(uint64_t cycle, unsigned sid, unsigned slot,
                 unsigned tile)
    {
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks)
            s->taskDispatch(cycle, sid, slot, tile);
    }

    void
    emitResidency(uint64_t cycle, unsigned sid, unsigned slot,
                  uint64_t mem, uint64_t spawn)
    {
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks)
            s->residencyStalls(cycle, sid, slot, mem, spawn);
    }

    void
    emitSuspend(uint64_t cycle, unsigned sid, unsigned slot)
    {
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks)
            s->taskSuspend(cycle, sid, slot);
    }

    void
    emitRetire(uint64_t cycle, unsigned sid, unsigned slot)
    {
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks)
            s->taskRetire(cycle, sid, slot);
    }

    void
    emitSpawnReject(uint64_t cycle, unsigned sid, bool queue_full)
    {
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks)
            s->spawnRejected(cycle, sid, queue_full);
    }

    /**
     * Cycles between queue-occupancy / cache-counter samples sent to
     * trace sinks (counter-track resolution in the Perfetto export).
     */
    uint64_t sampleInterval = 16;

    ir::MemImage &mem() { return _mem; }

    const hls::AcceleratorDesign &design() const { return _design; }

    const arch::AcceleratorParams &params() const
    {
        return _design.params;
    }

    TaskUnit &unit(unsigned sid) { return *units.at(sid); }

    SharedCache &cacheModel() { return cache; }

    /** Dump all stat groups (units + cache + global). */
    void dumpStats(std::ostream &os) const;

    StatGroup stats{"accel"};
    Counter rootRuns{stats, "runs", "root task invocations"};
    Histogram taskLifetime{stats, "task_lifetime",
                           "cycles from spawn to retire", 8};
    Distribution spawnLatency{stats, "spawn_latency",
                              "cycles from spawn to first dispatch"};

    /** Maximum cycles before declaring a hang. */
    uint64_t maxCycles = 2'000'000'000ull;

    /** Cycles without progress before declaring deadlock. */
    uint64_t watchdogCycles = 1'000'000;

    /**
     * Idle-cycle fast-forward: when a cycle makes no progress and
     * every unit is quiescent (only in-flight memory responses,
     * fixed-latency ops, or delayed spawn retries pending), jump
     * straight to the earliest wake-up cycle instead of spinning.
     * Cycle-exact by construction — modeled cycle counts, stats, and
     * observability streams are identical either way (pinned by
     * tests/sim_perf_test.cc). Auto-disabled while a fault injector
     * with any nonzero rate is attached: those draw from the RNG
     * every cycle, so skipping would change the fault schedule.
     */
    bool idleSkip = true;

    /**
     * Cycle-loop scheduling policy (see Scheduler). Event mode is
     * byte-identical to Scan on every workload — including fault
     * injection, tracing, and checkpoint/resume — and is the
     * default; Scan remains selectable as the reference
     * implementation and differential-test oracle.
     */
    Scheduler scheduler = Scheduler::Event;

    /**
     * Execute instances from the design's ahead-of-time lowered
     * micro-op tables (ir/lower.hh) instead of walking Instruction
     * objects. Byte-identical results either way — the legacy walker
     * remains as the differential oracle. Defaults to on when the
     * design carries tables and TAPAS_NO_LOWERING is unset; set
     * before run().
     */
    bool useLowering;

    /** Decoded program in effect for this run, or nullptr (legacy). */
    const ir::LoweredProgram *
    loweredProgram() const
    {
        return useLowering ? _design.lowered.get() : nullptr;
    }

    /** Resolved constant pool of lowered function `func_index`. */
    const ir::RtValue *
    constPool(uint32_t func_index) const
    {
        return lowPools[func_index].data();
    }

    /**
     * Cooperative cancellation (not owned; must outlive the run).
     * Polled every cancelPollInterval cycles — the only place the
     * simulator reads a wall clock — and honored at the top of the
     * next cycle: the run stops with SimFailure::Kind::Interrupted
     * and _cycles holding the boundary it stopped at. Null = never
     * polled; the zero-observer fast path is untouched.
     */
    const CancelToken *cancelToken = nullptr;

    /**
     * Deterministic *simulated-cycle* deadline: stop with Interrupted
     * before executing cycle `deadlineCycles` (0 = none). Unlike the
     * wall-clock token this is exact and reproducible — the
     * interrupt lands on the same boundary every run — so tests and
     * checkpoint cadences are built on it. A deadline at or past the
     * run's natural cycle count never fires (the run completes), and
     * a non-firing deadline leaves the run byte-identical: the
     * idle-skip wake is capped at the deadline, which only binds when
     * the deadline would have been reached anyway.
     */
    uint64_t deadlineCycles = 0;

    /** Cycles between cancel-token polls (amortizes clock reads). */
    uint64_t cancelPollInterval = 4096;

    /**
     * Checkpoint cadence: invoke onCheckpoint at each multiple of
     * checkpointEveryCycles the run reaches (0 = off; the idle-skip
     * wake is capped so boundaries are landed on exactly). The hook
     * runs between cycles — the simulator state is quiescent — and
     * must not mutate the simulation.
     */
    uint64_t checkpointEveryCycles = 0;
    std::function<void(uint64_t)> onCheckpoint;

    /** Cycles the last run() fast-forwarded over (diagnostics). */
    uint64_t skippedCycles() const { return idleSkipped; }

    /**
     * Tile-cycles the event scheduler covered with per-tile sleep
     * spans in the last run() (summed over units; 0 in scan mode).
     * Diagnostic only — never folded into stats or RunResult.
     */
    uint64_t tileSleptCycles() const
    {
        uint64_t total = 0;
        for (const auto &u : units)
            total += u->tileSleptCycles();
        return total;
    }

  private:
    /**
     * The state dump attached to deadlock / cycle-limit failures:
     * per-unit queue occupancy and entry-state breakdown,
     * outstanding cache misses, and the last cycle that made
     * progress.
     */
    std::string diagnosticDump(uint64_t now,
                               uint64_t last_progress_cycle) const;

    const hls::AcceleratorDesign &_design;
    ir::MemImage &_mem;
    SharedCache cache;
    std::vector<std::unique_ptr<TaskUnit>> units;

    /** Per-function constant pools with global addresses patched
     *  against _mem (lazily resolved at the first lowered run()). */
    std::vector<std::vector<ir::RtValue>> lowPools;

    uint64_t _cycles = 0;
    uint64_t idleSkipped = 0;

    /** Future tile wakes (event scheduler); reset each run(). */
    WakeupCalendar calendar;
    uint64_t progressEvents = 0;
    std::vector<obs::TraceSink *> sinks;
    bool hasSinks = false; ///< cached !sinks.empty() for emit paths
    obs::CycleProfiler *prof = nullptr;
    TaskTracer *tracer = nullptr; ///< setTracer() adapter bookkeeping
    FaultInjector *faultInj = nullptr;
    SimFailure failure_;
    bool rootFinished = false;
    ir::RtValue rootValue;
};

} // namespace tapas::sim

#endif // TAPAS_SIM_ACCEL_HH
