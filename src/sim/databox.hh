/**
 * @file
 * Data box (paper Section III-E, Fig. 8): the per-task-unit block that
 * connects the TXU's memory operations to the shared cache. It models
 * the in-arbiter tree (one request issued per cycle), the staging
 * buffer table (finite entries; full table back-pressures the TXU),
 * and the response demux (ticket-based completion back to the issuing
 * dataflow node).
 */

#ifndef TAPAS_SIM_DATABOX_HH
#define TAPAS_SIM_DATABOX_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/mem.hh"

namespace tapas::sim {

/** Handle identifying one in-flight memory request. */
using MemTicket = uint32_t;

/** Per-task-unit arbiter + staging buffers in front of the cache. */
class DataBox
{
  public:
    /**
     * @param cache the shared L1
     * @param staging_entries allocator-table capacity (Fig. 8)
     * @param issue_width requests granted per cycle by the in-arbiter
     */
    DataBox(SharedCache &cache, unsigned staging_entries,
            unsigned issue_width, std::string stat_name);

    /**
     * Try to accept a request from a dataflow node.
     *
     * @return true and a ticket if a staging entry was free.
     */
    bool submit(uint64_t addr, bool is_store, uint64_t now,
                MemTicket &ticket);

    /**
     * Poll a ticket; when complete the ticket is consumed.
     *
     * @return true once the response has arrived.
     */
    bool poll(MemTicket ticket, uint64_t now);

    /** Issue queued requests into the cache (call once per cycle). */
    void tick(uint64_t now);

    /** Entries currently occupied (tests/stats). */
    unsigned occupancy() const { return occupied; }

    /**
     * No requests waiting to issue into the cache: tick() would not
     * touch arbiter or cache state. An unissued request retries the
     * cache (and churns its reject stats) every cycle.
     */
    bool quiescent() const { return issueQueue.empty(); }

    /**
     * Idle-skip constraint from this box, evaluated at the end of a
     * quiet cycle `now`:
     *
     *   0        must be ticked next cycle (veto any skip)
     *   ~0       no constraint
     *   other    earliest cycle this box's state can change
     *
     * An empty issue queue poses no constraint — in-flight responses
     * are timed by their polling dataflow nodes, and staging-full
     * submit retries are bulk-accounted by accountSkipped(). A
     * non-empty queue is skippable only when this cycle's head
     * attempt was rejected for MSHR exhaustion and no MSHR was
     * allocated this cycle: that reject then provably repeats every
     * cycle (no accepts anywhere during a quiet span, so the cache's
     * line/MSHR state is frozen) until the earliest MSHR retires,
     * which is the returned wake. `allow_bulk` is false when trace
     * sinks are attached — skipped retries would drop their
     * per-cycle cacheStall events.
     */
    uint64_t
    stallWake(uint64_t now, bool allow_bulk) const
    {
        if (issueQueue.empty())
            return ~0ull;
        if (!allow_bulk || headRejectCycle != now ||
            !headRejectMshrFull ||
            cache.lastMshrAllocCycle() == now) {
            return 0;
        }
        return cache.nextMshrRetireAt();
    }

    /**
     * Bulk-account `n` skipped cycles after a quiet cycle `base`:
     * a head rejected at `base` would have retried (and been
     * rejected) once per cycle; every submit rejected at `base`
     * would likewise have retried per cycle while the staging table
     * stayed full.
     */
    /**
     * Forget stall witnesses (fresh run: cycle numbers restart, so
     * a stale witness could alias a new cycle and wrongly validate
     * a span).
     */
    void
    resetStallWitness()
    {
        headRejectCycle = ~0ull;
        headRejectMshrFull = false;
        fullRejectCycle = ~0ull;
        fullRejectsThisCycle = 0;
    }

    void
    accountSkipped(uint64_t n, uint64_t base)
    {
        if (!issueQueue.empty() && headRejectCycle == base) {
            cacheRetries += n;
            cache.bulkStallRejects(n);
        }
        if (fullRejectCycle == base)
            fullRejects += n * fullRejectsThisCycle;
    }

    /**
     * Completion cycle of an in-flight ticket, or 0 while it is
     * still waiting to issue (idle-skip wake computation; only
     * meaningful for a busy ticket).
     */
    uint64_t
    completesAt(MemTicket ticket) const
    {
        const Entry &e = entries[ticket];
        return e.issued ? e.completesAt : 0;
    }

    StatGroup stats;
    Counter submitted{stats, "requests", "memory requests accepted"};
    Counter fullRejects{stats, "full_rejects",
                        "requests rejected: staging table full"};
    Counter cacheRetries{stats, "cache_retries",
                         "issue attempts the cache rejected"};
    Counter timeoutReissues{stats, "timeout_reissues",
                            "lost responses timed out and reissued"};

  private:
    /** completesAt of a response an injected fault swallowed. */
    static constexpr uint64_t kLostResponse = ~0ull;

    struct Entry
    {
        bool busy = false;
        bool issued = false;
        bool store = false;
        uint64_t addr = 0;
        uint64_t completesAt = 0;
        uint64_t issuedAt = 0; ///< for the lost-response watchdog
    };

    SharedCache &cache;
    std::vector<Entry> entries;
    std::deque<MemTicket> issueQueue;
    unsigned issueWidth;
    unsigned occupied = 0;

    // Stall-span witnesses for the idle-cycle fast-forward: what
    // this box's per-cycle retries did in the current cycle.
    uint64_t headRejectCycle = ~0ull;  ///< head retry rejected then
    bool headRejectMshrFull = false;   ///< ...because MSHRs were full
    uint64_t fullRejectCycle = ~0ull;  ///< submit hit a full table
    unsigned fullRejectsThisCycle = 0; ///< how many, that cycle
};

} // namespace tapas::sim

#endif // TAPAS_SIM_DATABOX_HH
