/**
 * @file
 * Data box (paper Section III-E, Fig. 8): the per-task-unit block that
 * connects the TXU's memory operations to the shared cache. It models
 * the in-arbiter tree (one request issued per cycle), the staging
 * buffer table (finite entries; full table back-pressures the TXU),
 * and the response demux (ticket-based completion back to the issuing
 * dataflow node).
 */

#ifndef TAPAS_SIM_DATABOX_HH
#define TAPAS_SIM_DATABOX_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/mem.hh"

namespace tapas::sim {

/** Handle identifying one in-flight memory request. */
using MemTicket = uint32_t;

/** Per-task-unit arbiter + staging buffers in front of the cache. */
class DataBox
{
  public:
    /**
     * @param cache the shared L1
     * @param staging_entries allocator-table capacity (Fig. 8)
     * @param issue_width requests granted per cycle by the in-arbiter
     */
    DataBox(SharedCache &cache, unsigned staging_entries,
            unsigned issue_width, std::string stat_name);

    /**
     * Try to accept a request from a dataflow node.
     *
     * @return true and a ticket if a staging entry was free.
     */
    bool submit(uint64_t addr, bool is_store, uint64_t now,
                MemTicket &ticket);

    /**
     * Poll a ticket; when complete the ticket is consumed.
     *
     * @return true once the response has arrived.
     */
    bool poll(MemTicket ticket, uint64_t now);

    /** Issue queued requests into the cache (call once per cycle). */
    void tick(uint64_t now);

    /** Entries currently occupied (tests/stats). */
    unsigned occupancy() const { return occupied; }

    StatGroup stats;
    Counter submitted{stats, "requests", "memory requests accepted"};
    Counter fullRejects{stats, "full_rejects",
                        "requests rejected: staging table full"};
    Counter cacheRetries{stats, "cache_retries",
                         "issue attempts the cache rejected"};
    Counter timeoutReissues{stats, "timeout_reissues",
                            "lost responses timed out and reissued"};

  private:
    /** completesAt of a response an injected fault swallowed. */
    static constexpr uint64_t kLostResponse = ~0ull;

    struct Entry
    {
        bool busy = false;
        bool issued = false;
        bool store = false;
        uint64_t addr = 0;
        uint64_t completesAt = 0;
        uint64_t issuedAt = 0; ///< for the lost-response watchdog
    };

    SharedCache &cache;
    std::vector<Entry> entries;
    std::deque<MemTicket> issueQueue;
    unsigned issueWidth;
    unsigned occupied = 0;
};

} // namespace tapas::sim

#endif // TAPAS_SIM_DATABOX_HH
