/**
 * @file
 * AcceleratorSim: top-level cycle loop and inter-unit routing.
 */

#include "sim/accel.hh"

#include <algorithm>
#include <ostream>
#include <string>

#include "support/logging.hh"

namespace tapas::sim {

using ir::RtValue;

AcceleratorSim::AcceleratorSim(const hls::AcceleratorDesign &design,
                               ir::MemImage &mem)
    : _design(design), _mem(mem), cache(design.params.mem)
{
    // Lowered execution defaults to on whenever the design carries
    // decoded tables; TAPAS_NO_LOWERING forces the legacy walkers
    // (the differential-testing oracle).
    useLowering = design.lowered != nullptr &&
                  !ir::loweringDisabledByEnv();

    const arch::TaskGraph &tg = *design.taskGraph;
    for (const auto &task : tg.tasks()) {
        units.push_back(std::make_unique<TaskUnit>(
            *this, *task, design.dataflow(task->sid()),
            design.params.forTask(task->sid()), cache));
    }
    tapas_assert(!units.empty(), "accelerator with no task units");
}

SpawnOutcome
AcceleratorSim::spawnTask(unsigned sid,
                          const std::vector<RtValue> &args,
                          TaskRef parent,
                          const ir::CallInst *caller_site,
                          uint64_t now)
{
    return units.at(sid)->trySpawn(args, parent, caller_site, now);
}

void
AcceleratorSim::notifyChildDone(TaskRef parent, uint64_t now)
{
    units.at(parent.sid)->childJoined(parent.slot, now);
}

void
AcceleratorSim::notifyCallDone(TaskRef parent,
                               const ir::CallInst *site, RtValue v,
                               uint64_t now)
{
    units.at(parent.sid)->callReturned(parent.slot, site, v, now);
}

void
AcceleratorSim::rootDone(RtValue v)
{
    rootFinished = true;
    rootValue = v;
}

std::vector<obs::UnitInfo>
AcceleratorSim::unitInfos() const
{
    std::vector<obs::UnitInfo> infos;
    for (const auto &u : units) {
        infos.push_back(obs::UnitInfo{
            u->task().name(),
            static_cast<unsigned>(u->tiles.size())});
    }
    return infos;
}

void
AcceleratorSim::addSink(obs::TraceSink *sink)
{
    tapas_assert(sink, "null trace sink");
    sink->configure(unitInfos());
    sinks.push_back(sink);
    hasSinks = true;
    cache.addSink(sink);
}

void
AcceleratorSim::removeSink(obs::TraceSink *sink)
{
    for (size_t i = 0; i < sinks.size(); ++i) {
        if (sinks[i] == sink) {
            sinks.erase(sinks.begin() + static_cast<long>(i));
            break;
        }
    }
    hasSinks = !sinks.empty();
    cache.removeSink(sink);
}

void
AcceleratorSim::setTracer(TaskTracer *t)
{
    if (tracer)
        removeSink(tracer);
    tracer = t;
    if (tracer)
        addSink(tracer);
}

void
AcceleratorSim::setProfiler(obs::CycleProfiler *p)
{
    prof = p;
    if (prof)
        prof->configure(unitInfos());
}

RtValue
AcceleratorSim::run(const std::vector<RtValue> &top_args)
{
    // Bind the shared constant pools to this simulation's memory
    // image once; every instance frame then indexes them read-only.
    if (useLowering && lowPools.empty()) {
        const ir::LoweredProgram &lp = *_design.lowered;
        lowPools.reserve(lp.numFuncs());
        for (size_t i = 0; i < lp.numFuncs(); ++i)
            lowPools.push_back(
                ir::LoweredProgram::resolvePool(lp.at(i), _mem));
    }

    ++rootRuns;
    rootFinished = false;
    failure_ = SimFailure{};
    rootValue = RtValue{};
    idleSkipped = 0;
    for (auto &u : units)
        u->resetFiring(); // stale stamps from a previous run()

    // Idle-skip stays exact only while nothing consumes RNG per
    // cycle; a fault injector with any nonzero rate does.
    const bool skip_allowed =
        idleSkip && !(faultInj && faultInj->config().any());

    // Event scheduler: individual quiet tiles may sleep through
    // their stall spans (settled in bulk on wake-up). Requires the
    // same preconditions as the whole-machine skip, plus no trace
    // sinks: sinks consume per-cycle cache-stall events that bulk
    // accounting would drop. With tile sleep off, event mode
    // degenerates to the scan loop — trivially byte-identical.
    const bool tile_sleep = scheduler == Scheduler::Event &&
                            skip_allowed && !hasSinks;
    calendar.reset(0);
    for (auto &u : units)
        u->eventSleep = tile_sleep;

    // The host (ARM) writes the arguments and kicks the root unit.
    // With a fault injector the kick handshake itself may be dropped;
    // the host re-presents it each cycle until the port takes it, up
    // to the task-retry budget.
    bool rootSpawned = false;
    unsigned rootDrops = 0;

    uint64_t last_progress = progressEvents;
    uint64_t last_progress_cycle = 0;

    // Cooperative-interruption bookkeeping. The wall-clock token is
    // polled on an amortized cadence (poll at cycle 0 covers
    // "cancelled before the first cycle"); the simulated-cycle
    // deadline is exact. Checkpoints fire at the first boundary at
    // or past each multiple of the cadence.
    uint64_t cancel_poll_at = 0;
    uint64_t next_ckpt = checkpointEveryCycles;

    uint64_t last_ticked = 0; ///< last cycle the units were ticked
    uint64_t cyc = 0;
    for (; !rootFinished && !failure_.failed(); ++cyc) {
        if (deadlineCycles && cyc >= deadlineCycles) {
            reportFailure(SimFailure::Kind::Interrupted,
                          "cycle deadline of " +
                              std::to_string(deadlineCycles) +
                              " reached");
            if (hasSinks) {
                for (obs::TraceSink *s : sinks)
                    s->runInterrupted(cyc, "cycle_deadline");
            }
            break;
        }
        if (cancelToken && cyc >= cancel_poll_at) {
            cancel_poll_at = cyc + cancelPollInterval;
            if (cancelToken->shouldStop()) {
                const char *why =
                    cancelReasonName(cancelToken->reason());
                reportFailure(SimFailure::Kind::Interrupted,
                              std::string("run ") + why +
                                  " at cycle " + std::to_string(cyc));
                if (hasSinks) {
                    for (obs::TraceSink *s : sinks)
                        s->runInterrupted(cyc, why);
                }
                break;
            }
        }
        if (next_ckpt && cyc >= next_ckpt) {
            while (next_ckpt <= cyc)
                next_ckpt += checkpointEveryCycles;
            if (onCheckpoint)
                onCheckpoint(cyc);
            if (hasSinks) {
                for (obs::TraceSink *s : sinks)
                    s->checkpointWritten(cyc);
            }
        }
        if (cyc > maxCycles) {
            reportFailure(
                SimFailure::Kind::CycleLimit,
                "accelerator exceeded " + std::to_string(maxCycles) +
                    " cycles\n" +
                    diagnosticDump(cyc, last_progress_cycle));
            break;
        }

        cache.beginCycle(cyc);
        for (auto &u : units)
            u->beginCycle(cyc);

        if (!rootSpawned) {
            SpawnOutcome oc = units[0]->trySpawn(top_args, TaskRef{},
                                                 nullptr, cyc);
            if (oc == SpawnOutcome::Accepted) {
                rootSpawned = true;
            } else if (oc == SpawnOutcome::Rejected) {
                reportFailure(
                    SimFailure::Kind::SpawnFailed,
                    "root spawn rejected on an empty accelerator");
                break;
            } else if (faultInj &&
                       ++rootDrops >
                           faultInj->config().maxTaskRetries) {
                reportFailure(
                    SimFailure::Kind::FaultBudget,
                    "root spawn handshake dropped " +
                        std::to_string(rootDrops) +
                        " times; retry budget exhausted");
                break;
            }
        }

        // Transient bit flips in queue RAMs: at most one per cycle,
        // landing on a uniformly chosen unit.
        if (faultInj && faultInj->corruptThisCycle()) {
            unsigned sid = faultInj->pick(
                static_cast<unsigned>(units.size()));
            units[sid]->injectQueueCorruption(cyc, *faultInj);
        }

        if (tile_sleep)
            calendar.advanceTo(cyc); // entries <= cyc settle below

        for (auto &u : units)
            u->tick(cyc);
        last_ticked = cyc;

        if (prof) {
            for (auto &u : units)
                u->profileCycle(cyc);
        }
        if (observed() && cyc % sampleInterval == 0) {
            for (unsigned sid = 0; sid < units.size(); ++sid) {
                for (obs::TraceSink *s : sinks)
                    s->queueSample(cyc, sid, units[sid]->occupancy());
            }
            unsigned out = cache.outstandingMisses();
            for (obs::TraceSink *s : sinks)
                s->missSample(cyc, out);
        }

        if (progressEvents != last_progress) {
            last_progress = progressEvents;
            last_progress_cycle = cyc;
        } else if (cyc - last_progress_cycle > watchdogCycles) {
            reportFailure(
                SimFailure::Kind::Deadlock,
                "accelerator deadlock at cycle " +
                    std::to_string(cyc) + " (no progress for " +
                    std::to_string(watchdogCycles) +
                    " cycles). Recursion deeper than the task queues "
                    "(Ntasks) causes this, exactly as on the FPGA — "
                    "raise Ntasks.\n" +
                    diagnosticDump(cyc, last_progress_cycle));
            break;
        }

        // Idle-cycle fast-forward: this cycle was quiet (no progress
        // event), so the next state change can only come from a unit
        // timer — an in-flight memory response, a fixed-latency op,
        // an args-RAM transfer, a spawn-backoff deadline. Jump to
        // the earliest of those instead of spinning. Any unit that
        // must be ticked every cycle (pending issue-queue work,
        // per-cycle spawn retries, an unswept block) vetoes the jump
        // with a zero wake. Capping at the watchdog deadline, the
        // cycle limit, and the next trace-sample boundary keeps
        // failures and observability streams byte-identical to the
        // unskipped simulation.
        if (skip_allowed && rootSpawned && last_progress_cycle != cyc) {
            // Event mode: sleeping tiles are excluded from the unit
            // rescan below; the calendar holds their wake bounds.
            // (kNone == kNoWake, so an empty calendar is neutral.)
            uint64_t wake = tile_sleep ? calendar.nextEventAt()
                                       : InstanceExec::kNoWake;
            bool can_skip = true;
            for (auto &u : units) {
                uint64_t w = u->nextWake(cyc, !hasSinks);
                if (w == 0) {
                    can_skip = false;
                    break;
                }
                wake = std::min(wake, w);
            }
            if (can_skip) {
                wake = std::min(
                    wake, last_progress_cycle + watchdogCycles + 1);
                wake = std::min(wake, maxCycles + 1);
                // Land exactly on lifecycle boundaries: the cycle
                // deadline must fire at its cycle, and a checkpoint
                // boundary should not be overshot. Neither cap binds
                // unless the boundary is inside the skip span, so a
                // non-firing deadline keeps the run byte-identical.
                if (deadlineCycles)
                    wake = std::min(wake, deadlineCycles);
                if (next_ckpt)
                    wake = std::min(wake, next_ckpt);
                if (hasSinks) {
                    wake = std::min(
                        wake,
                        (cyc / sampleInterval + 1) * sampleInterval);
                }
                if (wake > cyc + 1) {
                    uint64_t skipped = wake - cyc - 1;
                    for (auto &u : units)
                        u->accountSkipped(skipped, cyc);
                    idleSkipped += skipped;
                    cyc = wake - 1; // for-loop ++ lands on `wake`
                }
            }
        }
    }

    if (tile_sleep) {
        // Tiles still asleep when the run ended: account their spans
        // through the last processed cycle (a sleeping tile can only
        // exist after at least one tick, so last_ticked is live).
        for (auto &u : units)
            u->settleAllSleeping(last_ticked);
    }

    _cycles = cyc;
    if (failure_.failed()) {
        // An interrupt is a requested stop, not a malfunction; the
        // caller reports it through the structured result instead.
        if (failure_.kind != SimFailure::Kind::Interrupted) {
            tapas_warn("accelerator run failed (%s): %s",
                       failureKindName(failure_.kind),
                       failure_.detail.c_str());
        }
        return RtValue{};
    }
    return rootValue;
}

std::string
AcceleratorSim::diagnosticDump(uint64_t now,
                               uint64_t last_progress_cycle) const
{
    std::string out;
    out += "  last progress at cycle " +
           std::to_string(last_progress_cycle) + " (now " +
           std::to_string(now) + ")\n";
    out += "  outstanding cache misses: " +
           std::to_string(cache.outstandingMisses()) + "\n";
    for (const auto &u : units) {
        std::array<unsigned, 5> c = u->stateCounts();
        out += "  unit " + u->task().name() + ": occupancy " +
               std::to_string(u->occupancy()) + "/" +
               std::to_string(u->entries.size()) + " [free=" +
               std::to_string(c[0]) + " ready=" +
               std::to_string(c[1]) + " exe=" + std::to_string(c[2]) +
               " sync=" + std::to_string(c[3]) + " waitcall=" +
               std::to_string(c[4]) + "], ready-queue depth " +
               std::to_string(u->readyQueue.size()) + "\n";
    }
    return out;
}

uint64_t
AcceleratorSim::totalSpawns() const
{
    uint64_t n = 0;
    for (const auto &u : units)
        n += u->spawnsAccepted.value();
    return n;
}

void
AcceleratorSim::dumpStats(std::ostream &os) const
{
    stats.dump(os);
    cache.stats.dump(os);
    for (const auto &u : units)
        u->stats.dump(os);
}

} // namespace tapas::sim
