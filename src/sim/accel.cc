/**
 * @file
 * AcceleratorSim: top-level cycle loop and inter-unit routing.
 */

#include "sim/accel.hh"

#include <ostream>

namespace tapas::sim {

using ir::RtValue;

AcceleratorSim::AcceleratorSim(const hls::AcceleratorDesign &design,
                               ir::MemImage &mem)
    : _design(design), _mem(mem), cache(design.params.mem)
{
    const arch::TaskGraph &tg = *design.taskGraph;
    for (const auto &task : tg.tasks()) {
        units.push_back(std::make_unique<TaskUnit>(
            *this, *task, design.dataflow(task->sid()),
            design.params.forTask(task->sid()), cache));
    }
    tapas_assert(!units.empty(), "accelerator with no task units");
}

bool
AcceleratorSim::spawnTask(unsigned sid, std::vector<RtValue> args,
                          TaskRef parent,
                          const ir::CallInst *caller_site,
                          uint64_t now)
{
    return units.at(sid)->trySpawn(std::move(args), parent,
                                   caller_site, now);
}

void
AcceleratorSim::notifyChildDone(TaskRef parent)
{
    units.at(parent.sid)->childJoined(parent.slot);
}

void
AcceleratorSim::notifyCallDone(TaskRef parent,
                               const ir::CallInst *site, RtValue v)
{
    units.at(parent.sid)->callReturned(parent.slot, site, v);
}

void
AcceleratorSim::rootDone(RtValue v)
{
    rootFinished = true;
    rootValue = v;
}

std::vector<obs::UnitInfo>
AcceleratorSim::unitInfos() const
{
    std::vector<obs::UnitInfo> infos;
    for (const auto &u : units) {
        infos.push_back(obs::UnitInfo{
            u->task().name(),
            static_cast<unsigned>(u->tiles.size())});
    }
    return infos;
}

void
AcceleratorSim::addSink(obs::TraceSink *sink)
{
    tapas_assert(sink, "null trace sink");
    sink->configure(unitInfos());
    sinks.push_back(sink);
    cache.addSink(sink);
}

void
AcceleratorSim::removeSink(obs::TraceSink *sink)
{
    for (size_t i = 0; i < sinks.size(); ++i) {
        if (sinks[i] == sink) {
            sinks.erase(sinks.begin() + static_cast<long>(i));
            break;
        }
    }
    cache.removeSink(sink);
}

void
AcceleratorSim::setTracer(TaskTracer *t)
{
    if (tracer)
        removeSink(tracer);
    tracer = t;
    if (tracer)
        addSink(tracer);
}

void
AcceleratorSim::setProfiler(obs::CycleProfiler *p)
{
    prof = p;
    if (prof)
        prof->configure(unitInfos());
}

RtValue
AcceleratorSim::run(std::vector<RtValue> top_args)
{
    ++rootRuns;
    rootFinished = false;

    // The host (ARM) writes the arguments and kicks the root unit.
    bool ok = units[0]->trySpawn(std::move(top_args), TaskRef{},
                                 nullptr, /*now=*/0);
    tapas_assert(ok, "root spawn rejected on an empty accelerator");
    units[0]->beginCycle(0); // re-arm the spawn port for cycle 0

    uint64_t last_progress = progressEvents;
    uint64_t last_progress_cycle = 0;

    uint64_t cyc = 0;
    for (; !rootFinished; ++cyc) {
        if (cyc > maxCycles)
            tapas_fatal("accelerator exceeded %llu cycles",
                        static_cast<unsigned long long>(maxCycles));

        cache.beginCycle(cyc);
        for (auto &u : units)
            u->beginCycle(cyc);
        for (auto &u : units)
            u->tick(cyc);

        if (prof) {
            for (auto &u : units)
                u->profileCycle(cyc);
        }
        if (observed() && cyc % sampleInterval == 0) {
            for (unsigned sid = 0; sid < units.size(); ++sid) {
                for (obs::TraceSink *s : sinks)
                    s->queueSample(cyc, sid, units[sid]->occupancy());
            }
            unsigned out = cache.outstandingMisses();
            for (obs::TraceSink *s : sinks)
                s->missSample(cyc, out);
        }

        if (progressEvents != last_progress) {
            last_progress = progressEvents;
            last_progress_cycle = cyc;
        } else if (cyc - last_progress_cycle > watchdogCycles) {
            std::string occ;
            for (auto &u : units) {
                occ += u->task().name() + "=" +
                       std::to_string(u->occupancy()) + " ";
            }
            tapas_fatal(
                "accelerator deadlock at cycle %llu (no progress for "
                "%llu cycles; queue occupancy: %s). Recursion deeper "
                "than the task queues (Ntasks) causes this, exactly "
                "as on the FPGA — raise Ntasks.",
                static_cast<unsigned long long>(cyc),
                static_cast<unsigned long long>(watchdogCycles),
                occ.c_str());
        }
    }

    _cycles = cyc;
    return rootValue;
}

uint64_t
AcceleratorSim::totalSpawns() const
{
    uint64_t n = 0;
    for (const auto &u : units)
        n += u->spawnsAccepted.value();
    return n;
}

void
AcceleratorSim::dumpStats(std::ostream &os) const
{
    stats.dump(os);
    cache.stats.dump(os);
    for (const auto &u : units)
        u->stats.dump(os);
}

} // namespace tapas::sim
