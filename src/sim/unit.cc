/**
 * @file
 * TaskUnit: task queue, spawn/join ports, tile dispatch (paper
 * Sections III-A/III-B, Figs. 4-5).
 */

#include "sim/accel.hh"

#include <algorithm>

namespace tapas::sim {

using ir::RtValue;

TaskUnit::TaskUnit(AcceleratorSim &sim, const arch::Task &task,
                   const arch::Dataflow &df,
                   const arch::TaskUnitParams &params,
                   SharedCache &cache)
    : stats("unit." + task.name()), sim(sim), _task(task), df(df),
      params(params), fidx(task)
{
    tapas_assert(params.ntasks >= 1 && params.ntiles >= 1,
                 "task unit needs a queue and at least one tile");
    entries.resize(params.ntasks);
    unsigned staging =
        std::max<unsigned>(4, static_cast<unsigned>(
                                  df.numMemPorts()) + 4);
    for (unsigned t = 0; t < params.ntiles; ++t) {
        tiles.push_back(std::make_unique<Tile>(
            cache, staging, /*issue_width=*/1, fidx.slots(),
            "box." + task.name() + "." + std::to_string(t)));
    }
    resetSleep();
}

SpawnOutcome
TaskUnit::trySpawn(const std::vector<RtValue> &args, TaskRef parent,
                   const ir::CallInst *caller_site, uint64_t now)
{
    // An injected fault may eat the ready/valid handshake before the
    // port even arbitrates it; the spawner backs off and retries.
    FaultInjector *inj = sim.faultInjector();
    if (inj && inj->dropSpawn()) {
        sim.emitFault(now, "spawn_drop", _task.sid());
        return SpawnOutcome::Dropped;
    }
    if (spawnAcceptedThisCycle) {
        ++spawnRejects;
        sim.emitSpawnReject(now, _task.sid(), /*queue_full=*/false);
        return SpawnOutcome::Rejected;
    }
    for (unsigned slot = 0; slot < entries.size(); ++slot) {
        QueueEntry &e = entries[slot];
        if (e.state != EntryState::Free)
            continue;
        spawnAcceptedThisCycle = true;
        e.state = EntryState::Ready;
        e.parent = parent;
        e.callerSite = caller_site;
        e.childCount = 0;
        e.spawnedAt = now;
        e.tile = -1;
        e.everDispatched = false;
        e.readyAt = now + sim.params().spawnHandshake +
                    static_cast<uint64_t>(args.size()) *
                        sim.params().spawnCyclesPerArg;
        if (inj) {
            e.savedArgs = args; // golden copy for checksum replay
            e.checksum = argsChecksum(args, _task.sid(), slot);
            e.faultRetries = 0;
        }
        // One pooled InstanceExec per queue slot: later spawns into
        // the same slot reset it instead of reallocating its frames,
        // register files and node-state vectors.
        if (!e.exec) {
            e.exec = std::make_unique<InstanceExec>(
                sim, _task, fidx, TaskRef{_task.sid(), slot});
        } else {
            e.exec->reset();
        }
        e.exec->start(args);
        readyQueue.push_back(slot);
        ++occupied;
        ++spawnsAccepted;
        sim.emitSpawn(now, _task.sid(), slot, parent);
        sim.progressEvent();
        return SpawnOutcome::Accepted;
    }
    ++spawnRejects;
    if (spawnRejectCycle != now) {
        spawnRejectCycle = now;
        spawnRejectsThisCycle = 0;
    }
    ++spawnRejectsThisCycle;
    sim.emitSpawnReject(now, _task.sid(), /*queue_full=*/true);
    return SpawnOutcome::Rejected;
}

uint32_t
TaskUnit::argsChecksum(const std::vector<RtValue> &args, unsigned sid,
                       unsigned slot)
{
    // FNV-1a over the marshaled argument words plus the entry's
    // identity, standing in for the ECC bits of the queue BRAM.
    uint32_t h = 2166136261u;
    auto mix = [&h](uint64_t word) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= static_cast<uint32_t>(word & 0xffu);
            h *= 16777619u;
            word >>= 8;
        }
    };
    mix((static_cast<uint64_t>(sid) << 32) | slot);
    for (const RtValue &v : args)
        mix(static_cast<uint64_t>(v.i));
    return h;
}

void
TaskUnit::injectQueueCorruption(uint64_t now, FaultInjector &inj)
{
    unsigned slot =
        static_cast<unsigned>(inj.pick(entries.size()));
    QueueEntry &e = entries[slot];
    // Only not-yet-dispatched entries live in the guarded queue BRAM;
    // flips landing elsewhere hit tile flip-flops and are absorbed
    // (re-executing a partially run task would not be idempotent).
    if (e.state != EntryState::Ready || e.everDispatched)
        return;
    e.checksum ^= inj.corruptionMask();
    ++inj.queueCorruptions;
    sim.emitFault(now, "queue_corrupt", _task.sid());
}

bool
TaskUnit::verifyEntryChecksum(unsigned slot, uint64_t now)
{
    FaultInjector *inj = sim.faultInjector();
    if (!inj)
        return true;
    QueueEntry &e = entries[slot];
    uint32_t expect = argsChecksum(e.savedArgs, _task.sid(), slot);
    if (e.checksum == expect)
        return true;

    if (e.faultRetries >= inj->config().maxTaskRetries) {
        sim.reportFailure(
            SimFailure::Kind::FaultBudget,
            "task '" + _task.name() + "' slot " +
                std::to_string(slot) + " exhausted its " +
                std::to_string(inj->config().maxTaskRetries) +
                "-replay fault budget on queue corruption");
        return false;
    }
    ++e.faultRetries;
    ++inj->taskReplays;
    sim.emitRecovery(now, "task_replay", _task.sid());

    // Re-marshal from the golden argument copy: fresh instance state,
    // fresh checksum, and the args-RAM transfer latency is paid again.
    e.exec->reset();
    e.exec->start(e.savedArgs);
    e.checksum = expect;
    e.readyAt = now + sim.params().spawnHandshake +
                static_cast<uint64_t>(e.savedArgs.size()) *
                    sim.params().spawnCyclesPerArg;
    readyQueue.pop_front();
    readyQueue.push_back(slot);
    sim.progressEvent();
    return false;
}

std::array<unsigned, 5>
TaskUnit::stateCounts() const
{
    std::array<unsigned, 5> counts{};
    for (const QueueEntry &e : entries)
        ++counts[static_cast<size_t>(e.state)];
    return counts;
}

void
TaskUnit::beginCycle(uint64_t now)
{
    spawnAcceptedThisCycle = false;
    dispatchedThisCycle = false;
    // The firing marks are generation-stamped by cycle, so there is
    // nothing to clear per cycle — only the fired_any tally resets.
    // A sleeping tile's tally is already 0 (it slept off a quiet
    // cycle and cannot fire while asleep), so clearing only awake
    // tiles keeps this O(awake tiles), not O(tiles).
    for (size_t ti = 0; ti < tiles.size(); ++ti) {
        if (tileSleepUntil[ti] == 0)
            tiles[ti]->firedThisCycle = 0;
    }
    if (FaultInjector *inj = sim.faultInjector()) {
        for (auto &t : tiles) {
            if (now >= t->stuckUntil && inj->stickTile()) {
                t->stuckUntil = now + inj->config().tileStuckCycles;
                sim.emitFault(now, "tile_stuck", _task.sid());
            }
        }
    }
}

void
TaskUnit::dispatch(uint64_t now)
{
    // One dispatch per unit per cycle, in spawn order.
    if (readyQueue.empty())
        return;
    unsigned slot = readyQueue.front();
    QueueEntry &e = entries[slot];
    tapas_assert(e.state == EntryState::Ready,
                 "non-ready entry in the ready queue");
    if (e.readyAt > now)
        return; // args still streaming into the args RAM
    if (!verifyEntryChecksum(slot, now))
        return; // entry consumed by fault recovery this cycle

    // Least-loaded tile with pipeline capacity (skipping frozen ones).
    int best = -1;
    for (unsigned t = 0; t < tiles.size(); ++t) {
        if (now < tiles[t]->stuckUntil)
            continue;
        if (tiles[t]->active.size() >= params.tilePipelineDepth)
            continue;
        if (best < 0 ||
            tiles[t]->active.size() < tiles[best]->active.size()) {
            best = static_cast<int>(t);
        }
    }
    if (best < 0)
        return; // every tile pipeline is full

    // A dispatch is an external poke: a sleeping chosen tile settles
    // its skipped span and takes the instance this very cycle (the
    // tile loop runs after dispatch, so scan order is preserved).
    wakeTileForPoke(static_cast<unsigned>(best), now);

    readyQueue.pop_front();
    e.state = EntryState::Exe;
    e.residMem = 0;
    e.residSpawn = 0;
    e.tile = best;
    tiles[best]->active.push_back(slot);
    dispatchedThisCycle = true;
    dispatchLatSum += now - e.spawnedAt;
    ++dispatchCount;
    if (!e.everDispatched) {
        e.everDispatched = true;
        sim.spawnLatency.sample(
            static_cast<double>(now - e.spawnedAt));
    }
    sim.emitDispatch(now, _task.sid(), slot,
                     static_cast<unsigned>(best));
    avgSpawnToDispatch = dispatchCount
        ? static_cast<double>(dispatchLatSum) / dispatchCount
        : 0.0;
    sim.progressEvent();
}

void
TaskUnit::detachFromTile(unsigned slot)
{
    QueueEntry &e = entries[slot];
    if (e.tile < 0)
        return;
    auto &act = tiles[e.tile]->active;
    for (size_t i = 0; i < act.size(); ++i) {
        if (act[i] == slot) {
            act.erase(act.begin() + static_cast<long>(i));
            break;
        }
    }
    e.tile = -1;
}

void
TaskUnit::retire(unsigned slot, uint64_t now)
{
    QueueEntry &e = entries[slot];
    // Tapir requires a sync before a task completes; a nonzero join
    // counter here would orphan children (their join would hit a
    // recycled entry).
    tapas_assert(e.childCount == 0,
                 "task '%s' instance %u completed with %d unsynced "
                 "children (missing sync before reattach/ret)",
                 _task.name().c_str(), slot, e.childCount);
    RtValue ret = e.exec->returnValue();
    TaskRef parent = e.parent;
    const ir::CallInst *site = e.callerSite;

    detachFromTile(slot);
    // Keep the pooled exec object (and its buffer capacities) alive;
    // the next spawn into this slot resets and restarts it.
    e.savedArgs.clear();
    e.state = EntryState::Free;
    --occupied;
    // The freed slot is what every registered spawn-waiter sleeps
    // on: wake them before anything else can race for it.
    if (!spawnWaiters.empty())
        pokeSpawnWaiters(now);
    ++instancesDone;
    sim.taskLifetime.sample(now - e.spawnedAt);
    sim.emitResidency(now, _task.sid(), slot, e.residMem,
                      e.residSpawn);
    sim.emitRetire(now, _task.sid(), slot);
    sim.progressEvent();

    if (!parent.valid()) {
        sim.rootDone(ret);
    } else if (site) {
        sim.notifyCallDone(parent, site, ret, now);
    } else {
        sim.notifyChildDone(parent, now);
    }
}

void
TaskUnit::tick(uint64_t now)
{
    tickCycle = now;
    tickTilePos = 0;
    dispatch(now);

    for (size_t ti = 0; ti < tiles.size(); ++ti) {
        tickTilePos = ti;
        Tile &tile = *tiles[ti];
        if (tileSleepUntil[ti] != 0) {
            if (tileSleepUntil[ti] > now)
                continue; // asleep: provably quiet until its wake
            // Timer due: close out the skipped span, then take the
            // normal per-cycle path below.
            settleTile(static_cast<unsigned>(ti), now - 1);
        }
        const uint64_t progressBefore = sim.progressCount();
        if (!tile.active.empty())
            ++tileBusyCycles;
        if (now < tile.stuckUntil) {
            // Frozen pipeline: no firing, but outstanding memory
            // requests keep draining through the data box.
            tile.box.tick(now);
            continue;
        }
        // Copy: instances may retire/suspend during iteration (the
        // scratch vector is a member, so no per-cycle allocation).
        const bool counting = sim.observed();
        stepScratch = tile.active;
        for (unsigned slot : stepScratch) {
            QueueEntry &e = entries[slot];
            tapas_assert(e.state == EntryState::Exe,
                         "active slot not in EXE");
            InstanceExec::Status st;
            if (counting) {
                // Residency stall attribution: a cycle in which the
                // instance fired nothing and holds no executing node
                // was spent entirely blocked — on memory responses
                // or on spawn back-pressure, memory winning ties
                // (same priority as classifyCycle()). Everything
                // else (including pipeline fill at a block boundary)
                // is compute.
                const uint64_t before = e.exec->firedCount();
                st = e.exec->step(now, tile);
                if (e.exec->firedCount() == before) {
                    unsigned ex = 0, mm = 0, sp = 0;
                    e.exec->phaseCensus(ex, mm, sp);
                    if (ex == 0) {
                        if (mm > 0)
                            ++e.residMem;
                        else if (sp > 0)
                            ++e.residSpawn;
                    }
                }
            } else {
                st = e.exec->step(now, tile);
            }
            switch (st) {
              case InstanceExec::Status::Running:
                break;
              case InstanceExec::Status::WaitSync:
                if (e.childCount == 0)
                    break; // joined during this very cycle
                detachFromTile(slot);
                e.state = EntryState::Sync;
                ++syncSuspends;
                sim.emitResidency(now, _task.sid(), slot, e.residMem,
                                  e.residSpawn);
                sim.emitSuspend(now, _task.sid(), slot);
                break;
              case InstanceExec::Status::WaitCall:
                detachFromTile(slot);
                e.state = EntryState::WaitCall;
                ++callSuspends;
                sim.emitResidency(now, _task.sid(), slot, e.residMem,
                                  e.residSpawn);
                sim.emitSuspend(now, _task.sid(), slot);
                break;
              case InstanceExec::Status::Done:
                retire(slot, now);
                break;
            }
        }
        tile.box.tick(now);

        // Event scheduler: a tile that just went through a provably
        // quiet cycle (no firing, no progress event from its
        // instances) may sleep until its earliest internal timer.
        // The fired/progress gate is only a cheap pre-filter;
        // correctness rests on tileWake()'s veto logic.
        if (eventSleep && tile.firedThisCycle == 0 &&
            now >= tile.stuckUntil &&
            sim.progressCount() == progressBefore) {
            uint64_t w = tileWake(tile, now);
            if (w > now + 1) {
                tileSleepUntil[ti] = w;
                tileSleepBase[ti] = now;
                ++sleepingTiles;
                if (w != InstanceExec::kNoWake)
                    sim.scheduleWake(w);
                if (!waitScratch.empty())
                    registerSpawnWaits(static_cast<unsigned>(ti),
                                       now);
            }
        }
    }
    tickTilePos = tiles.size();
}

uint64_t
TaskUnit::tileWake(const Tile &tile, uint64_t now)
{
    // Per-tile stall spans may be bulk-accounted (allow_bulk): an
    // MSHR-full head reject repeats identically every cycle until an
    // MSHR retires no matter what other tiles do (rejects never
    // allocate, and MSHR-full is classified before port contention).
    // Spawn retries pass allow_bulk=false but report their targets
    // into waitScratch instead of vetoing: a retry against a full
    // queue repeats verbatim until the target frees an entry, and
    // retire() — the only free site — pokes every registered waiter,
    // so the span stays exactly bounded.
    waitScratch.clear();
    uint64_t wake = tile.box.stallWake(now, /*allow_bulk=*/true);
    if (wake == 0)
        return 0;
    for (unsigned slot : tile.active) {
        uint64_t w = entries[slot].exec->nextWake(
            now, tile.box, /*allow_bulk=*/false, &waitScratch);
        if (w == 0)
            return 0;
        wake = std::min(wake, w);
    }
    // A spawn-waiter sleep is only sound against a full queue: a
    // non-full target (the reject was port contention, not
    // queue-full) could accept the very next re-present, so the
    // tile must stay awake and retry live.
    for (unsigned sid : waitScratch) {
        if (!sim.unit(sid).queueFull())
            return 0;
    }
    return wake;
}

void
TaskUnit::registerSpawnWaits(unsigned t, uint64_t now)
{
    auto &waits = tileSpawnWaits[t];
    tapas_assert(waits.empty(), "stale spawn-wait registrations");
    // Aggregate waitScratch (one sid per retrying node) into
    // per-target counts: each count is one queue-full reject the
    // target tallies per slept cycle at settle time.
    for (unsigned sid : waitScratch) {
        bool found = false;
        for (auto &[tsid, cnt] : waits) {
            if (tsid == sid) {
                ++cnt;
                found = true;
                break;
            }
        }
        if (!found)
            waits.emplace_back(sid, 1u);
    }
    for (const auto &[tsid, cnt] : waits) {
        TaskUnit &target = sim.unit(tsid);
        target.spawnWaiters.emplace_back(this, t);
        // This tile's rejects this cycle sit in the target's skip
        // witness iff no accept consumed the spawn port (a reject
        // with the port free is always queue-full, which stamps the
        // witness). Their repeats are now the settle credit's job,
        // so pull them back out — otherwise a global skip engaging
        // this very cycle would replay them a second time. With an
        // accept this cycle there was a progress event, so no skip
        // can replay this cycle's witness and the flavor of our
        // rejects (port-busy, unstamped) no longer matters.
        if (!target.spawnAcceptedThisCycle) {
            tapas_assert(target.spawnRejectCycle == now &&
                             target.spawnRejectsThisCycle >= cnt,
                         "spawn-wait registration without matching "
                         "witness rejects");
            target.spawnRejectsThisCycle -= cnt;
        }
    }
}

void
TaskUnit::pokeSpawnWaiters(uint64_t now)
{
    // Settling a waiter unregisters it from every target it waits
    // on (mutating this list), so drain a copy. wakeTileForPoke's
    // scan-position test decides whether the waiter's re-present
    // still runs this cycle or next, exactly as scan order would.
    pokeScratch = spawnWaiters;
    for (const auto &[u, t] : pokeScratch)
        u->wakeTileForPoke(t, now);
}

void
TaskUnit::settleTile(unsigned t, uint64_t upto)
{
    Tile &tile = *tiles[t];
    const uint64_t base = tileSleepBase[t];
    tapas_assert(upto >= base, "settling a tile backwards");
    const uint64_t n = upto - base;
    if (n > 0) {
        // Exactly what n scan-mode quiet cycles would have accrued:
        // the busy-cycle count (membership is frozen while asleep —
        // detach needs a step, dispatch pokes) and the data box's
        // per-cycle retry/reject witnesses. Residency attribution
        // needs nothing: tiles sleep only with no sinks attached.
        if (!tile.active.empty())
            tileBusyCycles += n;
        tile.box.accountSkipped(n, base);
        tileSlept += n;
    }
    // Spawn-waiter teardown: each slept cycle re-presented every
    // retrying node against its (provably still-full) target queue,
    // so the target tallies one queue-full reject per node per
    // cycle — exactly what scan mode would have counted live. The
    // targets' own reject witnesses only cover live attempts, so
    // this credit never overlaps accountSkipped()'s replay.
    auto &waits = tileSpawnWaits[t];
    for (const auto &[tsid, cnt] : waits) {
        TaskUnit &target = sim.unit(tsid);
        if (n > 0)
            target.spawnRejects += n * cnt;
        auto &reg = target.spawnWaiters;
        for (size_t i = 0; i < reg.size(); ++i) {
            if (reg[i].first == this && reg[i].second == t) {
                reg[i] = reg.back();
                reg.pop_back();
                break;
            }
        }
    }
    waits.clear();
    tileSleepUntil[t] = 0;
    --sleepingTiles;
}

void
TaskUnit::wakeTileForPoke(unsigned t, uint64_t now)
{
    if (tileSleepUntil[t] == 0)
        return;
    // Did this cycle's tile loop already pass tile t? Then scan mode
    // would have ticked it quietly at `now` before the poke arrived
    // (count `now` into the settled span; it reacts at now+1).
    // Otherwise it still gets its step this cycle, in scan order.
    const bool passed = tickCycle == now && tickTilePos > t;
    settleTile(t, passed ? now : now - 1);
}

void
TaskUnit::childJoined(unsigned slot, uint64_t now)
{
    QueueEntry &e = entries.at(slot);
    tapas_assert(e.state != EntryState::Free,
                 "join for a freed entry in '%s'",
                 _task.name().c_str());
    tapas_assert(e.childCount > 0, "join underflow in '%s'",
                 _task.name().c_str());
    --e.childCount;
    sim.progressEvent();
    // A join landing on an on-tile parent is an external poke: its
    // tile holds no timer for it (nextWake treats sync joins as
    // externally driven), so a sleeping tile must be woken here.
    if (e.tile >= 0)
        wakeTileForPoke(static_cast<unsigned>(e.tile), now);
    if (e.childCount == 0 && e.state == EntryState::Sync) {
        e.state = EntryState::Ready;
        e.readyAt = 0;
        readyQueue.push_back(slot);
    }
}

void
TaskUnit::callReturned(unsigned slot, const ir::CallInst *site,
                       RtValue v, uint64_t now)
{
    QueueEntry &e = entries.at(slot);
    tapas_assert(e.state != EntryState::Free,
                 "call return for a freed entry");
    e.exec->deliverCallResult(site, v);
    sim.progressEvent();
    // Same poke rule as childJoined: a call result delivered to an
    // instance still resident on a tile (it had not suspended yet)
    // makes that instance steppable next cycle.
    if (e.tile >= 0)
        wakeTileForPoke(static_cast<unsigned>(e.tile), now);
    if (e.state == EntryState::WaitCall) {
        e.state = EntryState::Ready;
        e.readyAt = 0;
        readyQueue.push_back(slot);
    }
}

void
TaskUnit::noteChildSpawned(unsigned slot)
{
    QueueEntry &e = entries.at(slot);
    tapas_assert(e.state == EntryState::Exe,
                 "spawn from a non-executing entry");
    ++e.childCount;
}

uint64_t
TaskUnit::nextWake(uint64_t now, bool allow_stall_bulk) const
{
    uint64_t wake = InstanceExec::kNoWake;

    if (!readyQueue.empty()) {
        const QueueEntry &e = entries[readyQueue.front()];
        if (e.readyAt > now) {
            // Args still streaming in; dispatch becomes possible at
            // readyAt (a spurious wake if the tiles are full then —
            // harmless, the tick is a no-op and skip re-engages).
            wake = std::min(wake, e.readyAt);
        } else {
            // Dispatchable now. In a quiet cycle this means every
            // tile is at capacity, but play it safe: if any tile can
            // take it next cycle, tick normally.
            for (const auto &t : tiles) {
                if (t->active.size() < params.tilePipelineDepth)
                    return 0;
            }
        }
    }

    for (size_t ti = 0; ti < tiles.size(); ++ti) {
        const Tile &tile = *tiles[ti];
        // A sleeping tile is already covered: its timer wake sits in
        // the calendar, and a poke-only sleeper wakes via the poker,
        // whose own timers bound the jump.
        if (tileSleepUntil[ti] != 0)
            continue;
        // Unissued requests churn cache/arbiter state every cycle;
        // a witnessed MSHR-full stall span yields a retire-time
        // bound instead of a veto (bulk-accounted on skip).
        uint64_t bw = tile.box.stallWake(now, allow_stall_bulk);
        if (bw == 0)
            return 0;
        wake = std::min(wake, bw);
        if (tile.stuckUntil > now)
            wake = std::min(wake, tile.stuckUntil);
        for (unsigned slot : tile.active) {
            uint64_t w = entries[slot].exec->nextWake(
                now, tile.box, allow_stall_bulk);
            if (w == 0)
                return 0;
            wake = std::min(wake, w);
        }
    }
    return wake;
}

void
TaskUnit::accountSkipped(uint64_t n, uint64_t base)
{
    for (size_t ti = 0; ti < tiles.size(); ++ti) {
        const auto &t = tiles[ti];
        // A sleeping tile settles its own span on wake-up; counting
        // it here too would double-account (the spans overlap).
        if (tileSleepUntil[ti] != 0)
            continue;
        if (!t->active.empty())
            tileBusyCycles += n;
        t->box.accountSkipped(n, base);
    }
    // Spawners rejected queue-full at `base` re-present (and are
    // re-rejected) once per skipped cycle.
    if (spawnRejectCycle == base)
        spawnRejects += n * spawnRejectsThisCycle;
    if (sim.observed()) {
        // Residency stall attribution over the skipped span: a quiet
        // span fires nothing and expires no timers, so each on-tile
        // instance's phase census is the one the per-cycle path would
        // have seen every skipped cycle (skip-on == skip-off).
        for (const auto &t : tiles) {
            if (t->stuckUntil > base + 1)
                continue; // frozen: the per-cycle path never steps it
            for (unsigned slot : t->active) {
                QueueEntry &e = entries[slot];
                unsigned ex = 0, mm = 0, sp = 0;
                e.exec->phaseCensus(ex, mm, sp);
                if (ex == 0) {
                    if (mm > 0)
                        e.residMem += n;
                    else if (sp > 0)
                        e.residSpawn += n;
                }
            }
        }
    }
    if (obs::CycleProfiler *prof = sim.profiler()) {
        // A skipped cycle fired nothing and dispatched nothing by
        // construction, so it classifies exactly like the quiet
        // cycle that triggered the skip.
        prof->note(_task.sid(), classifyCycle(/*fired_any=*/false),
                   n);
    }
}

obs::CycleBucket
TaskUnit::classifyCycle(bool fired_any) const
{
    if (occupancy() == 0)
        return obs::CycleBucket::Idle;

    unsigned exec_n = 0, mem_n = 0, spawn_n = 0;
    for (const QueueEntry &e : entries) {
        if (e.state == EntryState::Exe && e.exec)
            e.exec->phaseCensus(exec_n, mem_n, spawn_n);
    }

    // Exactly one bucket per unit per cycle, most-productive first:
    // any firing or in-flight compute counts as busy; otherwise the
    // dominant blocker wins. An occupied unit with no executing
    // instance is backed up in its queue (sync / wait-call / tiles
    // full), which is the queue-pressure bucket.
    if (fired_any || exec_n > 0)
        return obs::CycleBucket::Busy;
    if (mem_n > 0)
        return obs::CycleBucket::StallMem;
    if (spawn_n > 0)
        return obs::CycleBucket::StallSpawn;
    return obs::CycleBucket::QueueFull;
}

void
TaskUnit::profileCycle(uint64_t now)
{
    (void)now;
    obs::CycleProfiler *prof = sim.profiler();
    if (!prof)
        return;

    bool fired_any = dispatchedThisCycle;
    for (const auto &t : tiles)
        fired_any = fired_any || t->firedThisCycle > 0;

    prof->note(_task.sid(), classifyCycle(fired_any));
}

} // namespace tapas::sim
