/**
 * @file
 * TaskUnit: task queue, spawn/join ports, tile dispatch (paper
 * Sections III-A/III-B, Figs. 4-5).
 */

#include "sim/accel.hh"

#include <algorithm>

namespace tapas::sim {

using ir::RtValue;

TaskUnit::TaskUnit(AcceleratorSim &sim, const arch::Task &task,
                   const arch::Dataflow &df,
                   const arch::TaskUnitParams &params,
                   SharedCache &cache)
    : stats("unit." + task.name()), sim(sim), _task(task), df(df),
      params(params), fidx(task)
{
    tapas_assert(params.ntasks >= 1 && params.ntiles >= 1,
                 "task unit needs a queue and at least one tile");
    entries.resize(params.ntasks);
    unsigned staging =
        std::max<unsigned>(4, static_cast<unsigned>(
                                  df.numMemPorts()) + 4);
    for (unsigned t = 0; t < params.ntiles; ++t) {
        tiles.push_back(std::make_unique<Tile>(
            cache, staging, /*issue_width=*/1, fidx.slots(),
            "box." + task.name() + "." + std::to_string(t)));
    }
}

SpawnOutcome
TaskUnit::trySpawn(std::vector<RtValue> args, TaskRef parent,
                   const ir::CallInst *caller_site, uint64_t now)
{
    // An injected fault may eat the ready/valid handshake before the
    // port even arbitrates it; the spawner backs off and retries.
    FaultInjector *inj = sim.faultInjector();
    if (inj && inj->dropSpawn()) {
        sim.emitFault(now, "spawn_drop", _task.sid());
        return SpawnOutcome::Dropped;
    }
    if (spawnAcceptedThisCycle) {
        ++spawnRejects;
        sim.emitSpawnReject(now, _task.sid(), /*queue_full=*/false);
        return SpawnOutcome::Rejected;
    }
    for (unsigned slot = 0; slot < entries.size(); ++slot) {
        QueueEntry &e = entries[slot];
        if (e.state != EntryState::Free)
            continue;
        spawnAcceptedThisCycle = true;
        e.state = EntryState::Ready;
        e.parent = parent;
        e.callerSite = caller_site;
        e.childCount = 0;
        e.spawnedAt = now;
        e.tile = -1;
        e.everDispatched = false;
        e.readyAt = now + sim.params().spawnHandshake +
                    static_cast<uint64_t>(args.size()) *
                        sim.params().spawnCyclesPerArg;
        if (inj) {
            e.savedArgs = args; // golden copy for checksum replay
            e.checksum = argsChecksum(args, _task.sid(), slot);
            e.faultRetries = 0;
        }
        e.exec = std::make_unique<InstanceExec>(
            sim, _task, fidx, TaskRef{_task.sid(), slot});
        e.exec->start(std::move(args));
        readyQueue.push_back(slot);
        ++occupied;
        ++spawnsAccepted;
        sim.emitSpawn(now, _task.sid(), slot, parent);
        sim.progressEvent();
        return SpawnOutcome::Accepted;
    }
    ++spawnRejects;
    if (spawnRejectCycle != now) {
        spawnRejectCycle = now;
        spawnRejectsThisCycle = 0;
    }
    ++spawnRejectsThisCycle;
    sim.emitSpawnReject(now, _task.sid(), /*queue_full=*/true);
    return SpawnOutcome::Rejected;
}

uint32_t
TaskUnit::argsChecksum(const std::vector<RtValue> &args, unsigned sid,
                       unsigned slot)
{
    // FNV-1a over the marshaled argument words plus the entry's
    // identity, standing in for the ECC bits of the queue BRAM.
    uint32_t h = 2166136261u;
    auto mix = [&h](uint64_t word) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= static_cast<uint32_t>(word & 0xffu);
            h *= 16777619u;
            word >>= 8;
        }
    };
    mix((static_cast<uint64_t>(sid) << 32) | slot);
    for (const RtValue &v : args)
        mix(static_cast<uint64_t>(v.i));
    return h;
}

void
TaskUnit::injectQueueCorruption(uint64_t now, FaultInjector &inj)
{
    unsigned slot =
        static_cast<unsigned>(inj.pick(entries.size()));
    QueueEntry &e = entries[slot];
    // Only not-yet-dispatched entries live in the guarded queue BRAM;
    // flips landing elsewhere hit tile flip-flops and are absorbed
    // (re-executing a partially run task would not be idempotent).
    if (e.state != EntryState::Ready || e.everDispatched)
        return;
    e.checksum ^= inj.corruptionMask();
    ++inj.queueCorruptions;
    sim.emitFault(now, "queue_corrupt", _task.sid());
}

bool
TaskUnit::verifyEntryChecksum(unsigned slot, uint64_t now)
{
    FaultInjector *inj = sim.faultInjector();
    if (!inj)
        return true;
    QueueEntry &e = entries[slot];
    uint32_t expect = argsChecksum(e.savedArgs, _task.sid(), slot);
    if (e.checksum == expect)
        return true;

    if (e.faultRetries >= inj->config().maxTaskRetries) {
        sim.reportFailure(
            SimFailure::Kind::FaultBudget,
            "task '" + _task.name() + "' slot " +
                std::to_string(slot) + " exhausted its " +
                std::to_string(inj->config().maxTaskRetries) +
                "-replay fault budget on queue corruption");
        return false;
    }
    ++e.faultRetries;
    ++inj->taskReplays;
    sim.emitRecovery(now, "task_replay", _task.sid());

    // Re-marshal from the golden argument copy: fresh instance, fresh
    // checksum, and the args-RAM transfer latency is paid again.
    e.exec = std::make_unique<InstanceExec>(
        sim, _task, fidx, TaskRef{_task.sid(), slot});
    std::vector<RtValue> args = e.savedArgs;
    e.exec->start(std::move(args));
    e.checksum = expect;
    e.readyAt = now + sim.params().spawnHandshake +
                static_cast<uint64_t>(e.savedArgs.size()) *
                    sim.params().spawnCyclesPerArg;
    readyQueue.pop_front();
    readyQueue.push_back(slot);
    sim.progressEvent();
    return false;
}

std::array<unsigned, 5>
TaskUnit::stateCounts() const
{
    std::array<unsigned, 5> counts{};
    for (const QueueEntry &e : entries)
        ++counts[static_cast<size_t>(e.state)];
    return counts;
}

void
TaskUnit::beginCycle(uint64_t now)
{
    spawnAcceptedThisCycle = false;
    dispatchedThisCycle = false;
    // The firing marks are generation-stamped by cycle, so there is
    // nothing to clear per cycle — only the fired_any tally resets.
    for (auto &t : tiles)
        t->firedThisCycle = 0;
    if (FaultInjector *inj = sim.faultInjector()) {
        for (auto &t : tiles) {
            if (now >= t->stuckUntil && inj->stickTile()) {
                t->stuckUntil = now + inj->config().tileStuckCycles;
                sim.emitFault(now, "tile_stuck", _task.sid());
            }
        }
    }
}

void
TaskUnit::dispatch(uint64_t now)
{
    // One dispatch per unit per cycle, in spawn order.
    if (readyQueue.empty())
        return;
    unsigned slot = readyQueue.front();
    QueueEntry &e = entries[slot];
    tapas_assert(e.state == EntryState::Ready,
                 "non-ready entry in the ready queue");
    if (e.readyAt > now)
        return; // args still streaming into the args RAM
    if (!verifyEntryChecksum(slot, now))
        return; // entry consumed by fault recovery this cycle

    // Least-loaded tile with pipeline capacity (skipping frozen ones).
    int best = -1;
    for (unsigned t = 0; t < tiles.size(); ++t) {
        if (now < tiles[t]->stuckUntil)
            continue;
        if (tiles[t]->active.size() >= params.tilePipelineDepth)
            continue;
        if (best < 0 ||
            tiles[t]->active.size() < tiles[best]->active.size()) {
            best = static_cast<int>(t);
        }
    }
    if (best < 0)
        return; // every tile pipeline is full

    readyQueue.pop_front();
    e.state = EntryState::Exe;
    e.residMem = 0;
    e.residSpawn = 0;
    e.tile = best;
    tiles[best]->active.push_back(slot);
    dispatchedThisCycle = true;
    dispatchLatSum += now - e.spawnedAt;
    ++dispatchCount;
    if (!e.everDispatched) {
        e.everDispatched = true;
        sim.spawnLatency.sample(
            static_cast<double>(now - e.spawnedAt));
    }
    sim.emitDispatch(now, _task.sid(), slot,
                     static_cast<unsigned>(best));
    avgSpawnToDispatch = dispatchCount
        ? static_cast<double>(dispatchLatSum) / dispatchCount
        : 0.0;
    sim.progressEvent();
}

void
TaskUnit::detachFromTile(unsigned slot)
{
    QueueEntry &e = entries[slot];
    if (e.tile < 0)
        return;
    auto &act = tiles[e.tile]->active;
    for (size_t i = 0; i < act.size(); ++i) {
        if (act[i] == slot) {
            act.erase(act.begin() + static_cast<long>(i));
            break;
        }
    }
    e.tile = -1;
}

void
TaskUnit::retire(unsigned slot, uint64_t now)
{
    QueueEntry &e = entries[slot];
    // Tapir requires a sync before a task completes; a nonzero join
    // counter here would orphan children (their join would hit a
    // recycled entry).
    tapas_assert(e.childCount == 0,
                 "task '%s' instance %u completed with %d unsynced "
                 "children (missing sync before reattach/ret)",
                 _task.name().c_str(), slot, e.childCount);
    RtValue ret = e.exec->returnValue();
    TaskRef parent = e.parent;
    const ir::CallInst *site = e.callerSite;

    detachFromTile(slot);
    e.exec.reset();
    e.savedArgs.clear();
    e.state = EntryState::Free;
    --occupied;
    ++instancesDone;
    sim.taskLifetime.sample(now - e.spawnedAt);
    sim.emitResidency(now, _task.sid(), slot, e.residMem,
                      e.residSpawn);
    sim.emitRetire(now, _task.sid(), slot);
    sim.progressEvent();

    if (!parent.valid()) {
        sim.rootDone(ret);
    } else if (site) {
        sim.notifyCallDone(parent, site, ret);
    } else {
        sim.notifyChildDone(parent);
    }
}

void
TaskUnit::tick(uint64_t now)
{
    dispatch(now);

    for (auto &tile_up : tiles) {
        Tile &tile = *tile_up;
        if (!tile.active.empty())
            ++tileBusyCycles;
        if (now < tile.stuckUntil) {
            // Frozen pipeline: no firing, but outstanding memory
            // requests keep draining through the data box.
            tile.box.tick(now);
            continue;
        }
        // Copy: instances may retire/suspend during iteration (the
        // scratch vector is a member, so no per-cycle allocation).
        const bool counting = sim.observed();
        stepScratch = tile.active;
        for (unsigned slot : stepScratch) {
            QueueEntry &e = entries[slot];
            tapas_assert(e.state == EntryState::Exe,
                         "active slot not in EXE");
            InstanceExec::Status st;
            if (counting) {
                // Residency stall attribution: a cycle in which the
                // instance fired nothing and holds no executing node
                // was spent entirely blocked — on memory responses
                // or on spawn back-pressure, memory winning ties
                // (same priority as classifyCycle()). Everything
                // else (including pipeline fill at a block boundary)
                // is compute.
                const uint64_t before = e.exec->firedCount();
                st = e.exec->step(now, tile);
                if (e.exec->firedCount() == before) {
                    unsigned ex = 0, mm = 0, sp = 0;
                    e.exec->phaseCensus(ex, mm, sp);
                    if (ex == 0) {
                        if (mm > 0)
                            ++e.residMem;
                        else if (sp > 0)
                            ++e.residSpawn;
                    }
                }
            } else {
                st = e.exec->step(now, tile);
            }
            switch (st) {
              case InstanceExec::Status::Running:
                break;
              case InstanceExec::Status::WaitSync:
                if (e.childCount == 0)
                    break; // joined during this very cycle
                detachFromTile(slot);
                e.state = EntryState::Sync;
                ++syncSuspends;
                sim.emitResidency(now, _task.sid(), slot, e.residMem,
                                  e.residSpawn);
                sim.emitSuspend(now, _task.sid(), slot);
                break;
              case InstanceExec::Status::WaitCall:
                detachFromTile(slot);
                e.state = EntryState::WaitCall;
                ++callSuspends;
                sim.emitResidency(now, _task.sid(), slot, e.residMem,
                                  e.residSpawn);
                sim.emitSuspend(now, _task.sid(), slot);
                break;
              case InstanceExec::Status::Done:
                retire(slot, now);
                break;
            }
        }
        tile.box.tick(now);
    }
}

void
TaskUnit::childJoined(unsigned slot)
{
    QueueEntry &e = entries.at(slot);
    tapas_assert(e.state != EntryState::Free,
                 "join for a freed entry in '%s'",
                 _task.name().c_str());
    tapas_assert(e.childCount > 0, "join underflow in '%s'",
                 _task.name().c_str());
    --e.childCount;
    sim.progressEvent();
    if (e.childCount == 0 && e.state == EntryState::Sync) {
        e.state = EntryState::Ready;
        e.readyAt = 0;
        readyQueue.push_back(slot);
    }
}

void
TaskUnit::callReturned(unsigned slot, const ir::CallInst *site,
                       RtValue v)
{
    QueueEntry &e = entries.at(slot);
    tapas_assert(e.state != EntryState::Free,
                 "call return for a freed entry");
    e.exec->deliverCallResult(site, v);
    sim.progressEvent();
    if (e.state == EntryState::WaitCall) {
        e.state = EntryState::Ready;
        e.readyAt = 0;
        readyQueue.push_back(slot);
    }
}

void
TaskUnit::noteChildSpawned(unsigned slot)
{
    QueueEntry &e = entries.at(slot);
    tapas_assert(e.state == EntryState::Exe,
                 "spawn from a non-executing entry");
    ++e.childCount;
}

uint64_t
TaskUnit::nextWake(uint64_t now, bool allow_stall_bulk) const
{
    uint64_t wake = InstanceExec::kNoWake;

    if (!readyQueue.empty()) {
        const QueueEntry &e = entries[readyQueue.front()];
        if (e.readyAt > now) {
            // Args still streaming in; dispatch becomes possible at
            // readyAt (a spurious wake if the tiles are full then —
            // harmless, the tick is a no-op and skip re-engages).
            wake = std::min(wake, e.readyAt);
        } else {
            // Dispatchable now. In a quiet cycle this means every
            // tile is at capacity, but play it safe: if any tile can
            // take it next cycle, tick normally.
            for (const auto &t : tiles) {
                if (t->active.size() < params.tilePipelineDepth)
                    return 0;
            }
        }
    }

    for (const auto &tile_up : tiles) {
        const Tile &tile = *tile_up;
        // Unissued requests churn cache/arbiter state every cycle;
        // a witnessed MSHR-full stall span yields a retire-time
        // bound instead of a veto (bulk-accounted on skip).
        uint64_t bw = tile.box.stallWake(now, allow_stall_bulk);
        if (bw == 0)
            return 0;
        wake = std::min(wake, bw);
        if (tile.stuckUntil > now)
            wake = std::min(wake, tile.stuckUntil);
        for (unsigned slot : tile.active) {
            uint64_t w = entries[slot].exec->nextWake(
                now, tile.box, allow_stall_bulk);
            if (w == 0)
                return 0;
            wake = std::min(wake, w);
        }
    }
    return wake;
}

void
TaskUnit::accountSkipped(uint64_t n, uint64_t base)
{
    for (const auto &t : tiles) {
        if (!t->active.empty())
            tileBusyCycles += n;
        t->box.accountSkipped(n, base);
    }
    // Spawners rejected queue-full at `base` re-present (and are
    // re-rejected) once per skipped cycle.
    if (spawnRejectCycle == base)
        spawnRejects += n * spawnRejectsThisCycle;
    if (sim.observed()) {
        // Residency stall attribution over the skipped span: a quiet
        // span fires nothing and expires no timers, so each on-tile
        // instance's phase census is the one the per-cycle path would
        // have seen every skipped cycle (skip-on == skip-off).
        for (const auto &t : tiles) {
            if (t->stuckUntil > base + 1)
                continue; // frozen: the per-cycle path never steps it
            for (unsigned slot : t->active) {
                QueueEntry &e = entries[slot];
                unsigned ex = 0, mm = 0, sp = 0;
                e.exec->phaseCensus(ex, mm, sp);
                if (ex == 0) {
                    if (mm > 0)
                        e.residMem += n;
                    else if (sp > 0)
                        e.residSpawn += n;
                }
            }
        }
    }
    if (obs::CycleProfiler *prof = sim.profiler()) {
        // A skipped cycle fired nothing and dispatched nothing by
        // construction, so it classifies exactly like the quiet
        // cycle that triggered the skip.
        prof->note(_task.sid(), classifyCycle(/*fired_any=*/false),
                   n);
    }
}

obs::CycleBucket
TaskUnit::classifyCycle(bool fired_any) const
{
    if (occupancy() == 0)
        return obs::CycleBucket::Idle;

    unsigned exec_n = 0, mem_n = 0, spawn_n = 0;
    for (const QueueEntry &e : entries) {
        if (e.state == EntryState::Exe && e.exec)
            e.exec->phaseCensus(exec_n, mem_n, spawn_n);
    }

    // Exactly one bucket per unit per cycle, most-productive first:
    // any firing or in-flight compute counts as busy; otherwise the
    // dominant blocker wins. An occupied unit with no executing
    // instance is backed up in its queue (sync / wait-call / tiles
    // full), which is the queue-pressure bucket.
    if (fired_any || exec_n > 0)
        return obs::CycleBucket::Busy;
    if (mem_n > 0)
        return obs::CycleBucket::StallMem;
    if (spawn_n > 0)
        return obs::CycleBucket::StallSpawn;
    return obs::CycleBucket::QueueFull;
}

void
TaskUnit::profileCycle(uint64_t now)
{
    (void)now;
    obs::CycleProfiler *prof = sim.profiler();
    if (!prof)
        return;

    bool fired_any = dispatchedThisCycle;
    for (const auto &t : tiles)
        fired_any = fired_any || t->firedThisCycle > 0;

    prof->note(_task.sid(), classifyCycle(fired_any));
}

} // namespace tapas::sim
