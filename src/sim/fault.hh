/**
 * @file
 * Deterministic fault injection and structured simulation failure.
 *
 * The FaultInjector perturbs a running AcceleratorSim with seeded,
 * per-cycle/per-event probabilities, modeling the transient hardware
 * faults a deployed TAPAS accelerator would have to survive:
 *
 *  - dropped spawn handshakes at the spawn ports (a corrupted
 *    ready/valid pulse): the spawner's retry logic re-presents the
 *    spawn with bounded exponential backoff;
 *  - task-queue entry corruption (a bit flip in the queue BRAM):
 *    every queue entry carries a checksum over its marshaled
 *    arguments — the hardware analogue is ECC on the Ntasks RAM —
 *    verified at dispatch; a mismatch re-marshals and re-enqueues the
 *    instance, charged against a per-task retry budget;
 *  - lost or delayed memory responses (an AXI beat that never
 *    arrives): the data box times out the outstanding request and
 *    reissues it, like an AXI master with a watchdog on outstanding
 *    transactions;
 *  - transiently stuck TXU tiles (a frozen pipeline stage): the tile
 *    stops firing for a bounded number of cycles and then resumes.
 *
 * All draws come from one explicitly seeded support/rng.hh generator
 * consumed in simulation order, so a (seed, config) pair produces a
 * bit-identical fault schedule on every run. A zero rate for a
 * category consumes no randomness at all, so an attached injector
 * with all rates at zero perturbs nothing (tests pin this).
 *
 * Alongside injection, SimFailure turns what used to be process
 * aborts (watchdog deadlock, cycle-limit overrun, exhausted retry
 * budgets) into structured, recoverable failure values that the
 * driver layer threads into RunResult, so one wedged configuration
 * cannot tear down a multi-threaded sweep.
 */

#ifndef TAPAS_SIM_FAULT_HH
#define TAPAS_SIM_FAULT_HH

#include <cstdint>
#include <string>

#include "support/rng.hh"
#include "support/stats.hh"

namespace tapas::sim {

/** How a simulation ended when it did not retire the root task. */
struct SimFailure
{
    enum class Kind : uint8_t {
        None,        ///< run completed normally
        Deadlock,    ///< watchdog: no progress for watchdogCycles
        CycleLimit,  ///< exceeded maxCycles
        FaultBudget, ///< a task exhausted its fault-retry budget
        SpawnFailed, ///< root spawn rejected by an empty accelerator
        Interrupted, ///< cooperative stop (deadline or cancel)
    };

    Kind kind = Kind::None;

    /** Human-readable diagnostic (per-unit state dump on deadlock). */
    std::string detail;

    bool failed() const { return kind != Kind::None; }
};

/** Stable snake_case name of a failure kind ("deadlock", ...). */
const char *failureKindName(SimFailure::Kind kind);

/** Rates and recovery knobs for one injector. */
struct FaultConfig
{
    /** Seed for the fault schedule (same seed = same schedule). */
    uint64_t seed = 0x7a7a5u;

    /** Probability a spawn-port handshake is dropped, per attempt. */
    double spawnDropRate = 0;

    /** Probability of a queue-RAM bit flip, per cycle. */
    double queueCorruptRate = 0;

    /** Probability an accepted memory response is lost, per access. */
    double memDropRate = 0;

    /** Probability an accepted memory response is late, per access. */
    double memDelayRate = 0;

    /** Probability a tile pipeline freezes, per tile per cycle. */
    double tileStuckRate = 0;

    /** Extra cycles a delayed memory response takes. */
    unsigned memDelayCycles = 32;

    /** Cycles before an outstanding request is timed out/reissued. */
    unsigned memTimeoutCycles = 512;

    /** Cycles a stuck tile stays frozen. */
    unsigned tileStuckCycles = 16;

    /** Re-enqueues one task instance may consume before failing. */
    unsigned maxTaskRetries = 8;

    /** Cap on the spawn-retry exponential backoff, in cycles. */
    unsigned maxSpawnBackoff = 64;

    /** Any injection actually enabled? */
    bool
    any() const
    {
        return spawnDropRate > 0 || queueCorruptRate > 0 ||
               memDropRate > 0 || memDelayRate > 0 ||
               tileStuckRate > 0;
    }

    /** All five injection rates set to `rate` (CLI --fault-rate). */
    static FaultConfig
    uniform(double rate, uint64_t seed)
    {
        FaultConfig cfg;
        cfg.seed = seed;
        cfg.spawnDropRate = rate;
        cfg.queueCorruptRate = rate;
        cfg.memDropRate = rate;
        cfg.memDelayRate = rate;
        cfg.tileStuckRate = rate;
        return cfg;
    }
};

/**
 * Draws the fault schedule and accumulates fault/recovery counters.
 * Attach to a simulation with AcceleratorSim::setFaultInjector();
 * not owned, must outlive the run. The injection/recovery *behavior*
 * lives in the simulator components (unit/exec/databox/mem); this
 * class only decides *when* and counts *what happened*.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config)
        : cfg(config), rng(config.seed)
    {}

    const FaultConfig &config() const { return cfg; }

    /** Drop this spawn handshake? (counts on true) */
    bool
    dropSpawn()
    {
        if (!draw(cfg.spawnDropRate))
            return false;
        ++spawnDrops;
        return true;
    }

    /** Flip a queue-RAM bit somewhere this cycle? */
    bool corruptThisCycle() { return draw(cfg.queueCorruptRate); }

    /** What happens to this accepted memory response? */
    enum class MemFault : uint8_t { None, Delay, Drop };

    MemFault
    memFault()
    {
        if (draw(cfg.memDropRate)) {
            ++memDrops;
            return MemFault::Drop;
        }
        if (draw(cfg.memDelayRate)) {
            ++memDelays;
            return MemFault::Delay;
        }
        return MemFault::None;
    }

    /** Freeze this tile? (counts on true) */
    bool
    stickTile()
    {
        if (!draw(cfg.tileStuckRate))
            return false;
        ++tileStalls;
        return true;
    }

    /** Uniform pick in [0, bound) for fault targeting. */
    uint64_t pick(uint64_t bound) { return rng.below(bound); }

    /** Nonzero 32-bit corruption mask (the bits that flipped). */
    uint32_t
    corruptionMask()
    {
        uint32_t m = static_cast<uint32_t>(rng.next());
        return m ? m : 1u;
    }

    /**
     * Backoff before the Nth consecutive retry of a dropped spawn:
     * exponential, capped at maxSpawnBackoff cycles.
     */
    uint64_t
    spawnBackoff(unsigned attempt) const
    {
        unsigned shift = attempt < 16 ? attempt : 16;
        uint64_t delay = 1ull << shift;
        return delay < cfg.maxSpawnBackoff ? delay
                                           : cfg.maxSpawnBackoff;
    }

    // --- statistics ---------------------------------------------------

    StatGroup stats{"fault"};

    // Injected faults.
    Counter spawnDrops{stats, "spawn_drops",
                       "spawn handshakes dropped at a port"};
    Counter queueCorruptions{stats, "queue_corruptions",
                             "queue entries hit by a bit flip"};
    Counter memDrops{stats, "mem_drops", "memory responses lost"};
    Counter memDelays{stats, "mem_delays", "memory responses delayed"};
    Counter tileStalls{stats, "tile_stalls",
                       "transient tile pipeline freezes"};

    // Recovery actions.
    Counter spawnRetries{stats, "spawn_retries",
                         "spawn re-presentations after a drop"};
    Counter taskReplays{stats, "task_replays",
                        "instances re-enqueued after checksum "
                        "mismatch"};
    Counter memReissues{stats, "mem_reissues",
                        "memory requests reissued after timeout"};

  private:
    /** Bernoulli draw; a zero rate consumes no randomness. */
    bool draw(double p) { return p > 0 && rng.chance(p); }

    FaultConfig cfg;
    Rng rng;
};

} // namespace tapas::sim

#endif // TAPAS_SIM_FAULT_HH
