/**
 * @file
 * Shared memory-system timing model: a set-associative L1 cache with
 * a finite number of outstanding misses (MSHRs) in front of an
 * AXI/DRAM channel with fixed latency and finite bandwidth.
 *
 * This mirrors the paper's memory system (Section III-E and VI): all
 * task units share one L1; the cache is blocking beyond its MSHR
 * count ("limited support for multiple outstanding cache misses");
 * DRAM transfers serialize on the AXI channel.
 *
 * The model is timing-only: functional data lives in the shared
 * ir::MemImage and is read/written by the TXU at issue time.
 */

#ifndef TAPAS_SIM_MEM_HH
#define TAPAS_SIM_MEM_HH

#include <cstdint>
#include <vector>

#include "arch/params.hh"
#include "obs/sink.hh"
#include "sim/fault.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace tapas::sim {

/** Outcome of presenting one request to the cache. */
struct CacheResult
{
    /** False: no port or MSHR this cycle; retry later. */
    bool accepted = false;

    /**
     * Set on rejection when the cause was MSHR exhaustion (vs port
     * contention). An MSHR-full reject repeats identically every
     * cycle until an MSHR retires, which is what lets the idle-skip
     * fast-forward stall spans (see DataBox::stallWake).
     */
    bool mshrFull = false;

    /** Cycle at which the data is available to the requester. */
    uint64_t completesAt = 0;

    /** True if the access hit (for stats/tests). */
    bool hit = false;

    /**
     * Injected fault: the response will never arrive. The requester
     * (data box) must time the request out and reissue it.
     */
    bool dropped = false;
};

/** Shared L1 cache + DRAM channel timing model. */
class SharedCache
{
  public:
    explicit SharedCache(const arch::MemSystemParams &params);

    /** Reset per-cycle port bookkeeping; retire finished MSHRs. */
    void beginCycle(uint64_t now);

    /**
     * Present one word access.
     *
     * @param addr byte address
     * @param is_store true for stores
     * @param now current cycle
     */
    CacheResult request(uint64_t addr, bool is_store, uint64_t now);

    /** Invalidate all lines (fresh run on a reused model). */
    void reset();

    /**
     * Attach (or detach, with nullptr) a fault injector perturbing
     * accepted responses (lost/delayed data). Not owned; usually
     * driven by AcceleratorSim::setFaultInjector().
     */
    void setFaultInjector(FaultInjector *f) { injector = f; }

    /** Attached injector, or nullptr (data boxes consult this). */
    FaultInjector *faultInjector() { return injector; }

    /**
     * A data box timed out a dropped response and reissued the
     * request (recovery bookkeeping + sink notification).
     */
    void
    noteReissue(uint64_t now)
    {
        if (injector)
            ++injector->memReissues;
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks)
            s->faultRecovered(now, "mem_reissue", ~0u);
    }

    /**
     * Attach a trace sink to observe misses and port/MSHR stalls.
     * Usually driven by AcceleratorSim::addSink(); not owned.
     */
    void
    addSink(obs::TraceSink *sink)
    {
        sinks.push_back(sink);
        hasSinks = true;
    }

    /** Detach a previously attached sink (no-op if absent). */
    void
    removeSink(obs::TraceSink *sink)
    {
        for (size_t i = 0; i < sinks.size(); ++i) {
            if (sinks[i] == sink) {
                sinks.erase(sinks.begin() + static_cast<long>(i));
                break;
            }
        }
        hasSinks = !sinks.empty();
    }

    /**
     * Earliest cycle at which a busy MSHR retires (its fill lands
     * and beginCycle frees it), or ~0 when none are busy. Idle-skip
     * wake bound for MSHR-full stall spans.
     */
    uint64_t
    nextMshrRetireAt() const
    {
        uint64_t wake = ~0ull;
        if (outstanding == 0)
            return wake;
        for (const Mshr &m : mshrs) {
            if (m.busy && m.readyAt < wake)
                wake = m.readyAt;
        }
        return wake;
    }

    /**
     * Cycle of the most recent MSHR allocation. A reject witnessed
     * in a cycle that also allocated an MSHR is not a valid
     * stall-span witness: the rejected request might merge into the
     * new MSHR (or hit its line) on the next attempt.
     */
    uint64_t lastMshrAllocCycle() const { return mshrAllocCycle; }

    /**
     * Bulk-account `n` skipped cycles of one MSHR-full stall span:
     * the span's per-cycle retry would have rejected once per cycle.
     */
    void bulkStallRejects(uint64_t n) { mshrRejects += n; }

    /** MSHRs currently tracking an in-flight miss (counter track). */
    unsigned
    outstandingMisses() const
    {
#ifndef NDEBUG
        unsigned n = 0;
        for (const Mshr &m : mshrs) {
            if (m.busy)
                ++n;
        }
        tapas_assert(n == outstanding,
                     "MSHR counter out of sync: counted %u, "
                     "maintained %u", n, outstanding);
#endif
        return outstanding;
    }

    // --- statistics ---------------------------------------------------

    StatGroup stats{"l1cache"};
    Counter hits{stats, "hits", "cache hits"};
    Counter misses{stats, "misses", "cache misses"};
    Counter mshrMerges{stats, "mshr_merges",
                       "misses merged into an in-flight MSHR"};
    Counter portRejects{stats, "port_rejects",
                        "requests rejected: all ports busy"};
    Counter mshrRejects{stats, "mshr_rejects",
                        "requests rejected: all MSHRs busy"};
    Counter writebacks{stats, "writebacks", "dirty evictions"};
    Counter accesses{stats, "accesses", "total accepted accesses"};

    double
    hitRate() const
    {
        uint64_t total = hits.value() + misses.value();
        return total ? static_cast<double>(hits.value()) / total : 0.0;
    }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;
        uint64_t readyAt = 0; ///< fill completion time
    };

    struct Mshr
    {
        bool busy = false;
        uint64_t lineAddr = 0;
        uint64_t readyAt = 0;
    };

    uint64_t lineAddrOf(uint64_t addr) const
    {
        return addr / params.lineBytes;
    }

    /** Cycles to move one line over the DRAM channel. */
    unsigned
    lineTransferCycles() const
    {
        unsigned words = params.lineBytes / 8;
        return std::max(1u, words / params.dramWordsPerCycle);
    }

    void
    emitMiss(uint64_t now)
    {
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks)
            s->cacheMiss(now);
    }

    void
    emitStall(uint64_t now, bool mshr_full)
    {
        if (!hasSinks)
            return;
        for (obs::TraceSink *s : sinks)
            s->cacheStall(now, mshr_full);
    }

    /** Perturb an accepted result per the attached injector. */
    void applyResponseFault(CacheResult &res, uint64_t now);

    arch::MemSystemParams params;
    FaultInjector *injector = nullptr;
    unsigned numSets;
    std::vector<Line> lines;       // numSets x ways
    std::vector<Mshr> mshrs;
    unsigned portsUsed = 0;

    /**
     * Busy MSHRs, maintained incrementally (allocate / retire) so
     * outstandingMisses() and the begin-of-cycle retire scan are
     * O(1) when no miss is in flight; asserted against the full
     * scan in debug builds.
     */
    unsigned outstanding = 0;

    /** Cycle of the last MSHR allocation (stall-span witness). */
    uint64_t mshrAllocCycle = ~0ull;

    uint64_t dramNextFree = 0;
    std::vector<obs::TraceSink *> sinks;
    bool hasSinks = false; ///< cached !sinks.empty() for emit paths
};

} // namespace tapas::sim

#endif // TAPAS_SIM_MEM_HH
