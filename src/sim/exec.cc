/**
 * @file
 * InstanceExec: dataflow execution of one dynamic task instance
 * (the per-tile TXU pipeline of paper Section III-C).
 */

#include "sim/accel.hh"

#include <algorithm>

namespace tapas::sim {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::RtValue;
using ir::Value;

InstanceExec::InstanceExec(AcceleratorSim &sim, const arch::Task &task,
                           const arch::FiringIndex &fidx, TaskRef self)
    : sim(sim), task(task), fidx(fidx), self(self)
{}

void
InstanceExec::start(std::vector<RtValue> args)
{
    const auto &formals = task.args();
    tapas_assert(args.size() == formals.size(),
                 "task '%s' spawned with %zu args, expects %zu",
                 task.name().c_str(), args.size(), formals.size());

    frames.emplace_back();
    Frame &f = frames.back();
    f.func = task.function();
    f.fireBase = fidx.baseOf(f.func);
    f.regs.resize(f.func->numInstructions());

    // Resolve the marshaled live-ins to dense slots once, here, so
    // the per-cycle operand path never touches an associative
    // container: Argument formals by argument index, enclosing-task
    // Instruction values straight into the frame's register file.
    taskArgVals.assign(f.func->numArgs(), RtValue{});
    taskArgPresent.assign(f.func->numArgs(), 0);
    argInstMark.assign(f.func->numInstructions(), 0);
    for (size_t i = 0; i < formals.size(); ++i) {
        const Value *v = formals[i];
        if (v->valueKind() == Value::Kind::Argument) {
            unsigned idx =
                static_cast<const ir::Argument *>(v)->index();
            taskArgVals[idx] = args[i];
            taskArgPresent[idx] = 1;
        } else {
            tapas_assert(v->valueKind() == Value::Kind::Instruction,
                         "task '%s' marshals a non-argument, "
                         "non-instruction live-in",
                         task.name().c_str());
            unsigned id = static_cast<const Instruction *>(v)->id();
            f.regs[id] = args[i];
            argInstMark[id] = 1;
        }
    }
}

RtValue
InstanceExec::evalOperand(const Frame &frame, const Value *v)
{
    switch (v->valueKind()) {
      case Value::Kind::ConstantInt:
        return RtValue::fromInt(
            static_cast<const ir::ConstantInt *>(v)->value());
      case Value::Kind::ConstantFloat:
        return RtValue::fromFloat(
            static_cast<const ir::ConstantFloat *>(v)->value());
      case Value::Kind::Global:
        return RtValue::fromPtr(sim.mem().addressOf(
            static_cast<const ir::GlobalVar *>(v)));
      case Value::Kind::Argument: {
        auto *arg = static_cast<const ir::Argument *>(v);
        if (frame.returnTo) {
            tapas_assert(arg->parent() == frame.func,
                         "leaf frame uses a foreign argument");
            return frame.argVals[arg->index()];
        }
        tapas_assert(arg->index() < taskArgPresent.size() &&
                     taskArgPresent[arg->index()],
                     "task '%s' uses unmarshaled argument '%s'",
                     task.name().c_str(), arg->name().c_str());
        return taskArgVals[arg->index()];
      }
      case Value::Kind::Instruction:
        // Values defined in enclosing tasks were marshaled straight
        // into the task frame's registers by start(); ids are
        // function-wide, so they never collide with instructions the
        // task itself executes.
        return frame.regs[static_cast<const Instruction *>(v)->id()];
      default:
        tapas_panic("unexpected operand kind in TXU");
    }
}

void
InstanceExec::enterBlock(Frame &frame, const BasicBlock *bb,
                         uint64_t now)
{
    frame.prev = frame.bb;
    frame.bb = bb;
    frame.nst.assign(bb->size(), NodeState{});
    frame.fresh = true; // nodes fireable before any timer expires

    // Phis are wires out of the instance's registers: resolve all of
    // them in parallel at block entry, zero cost.
    auto phis = bb->phis();
    if (!phis.empty()) {
        tapas_assert(frame.prev, "phi in a task/function entry block");
        phiScratch.clear();
        phiScratch.reserve(phis.size());
        for (ir::PhiInst *phi : phis)
            phiScratch.push_back(
                evalOperand(frame, phi->incomingFor(frame.prev)));
        for (size_t i = 0; i < phis.size(); ++i) {
            frame.regs[phis[i]->id()] = phiScratch[i];
            frame.nst[i].phase = Phase::DoneNode;
            frame.nst[i].doneAt = now;
        }
    }
}

bool
InstanceExec::blockDone(const Frame &frame) const
{
    for (const NodeState &st : frame.nst) {
        if (st.phase != Phase::DoneNode)
            return false;
    }
    return true;
}

bool
InstanceExec::tryFire(Frame &frame, size_t idx, uint64_t now,
                      Tile &tile)
{
    const Instruction *inst = frame.bb->instructions()[idx].get();
    unsigned base_id = frame.bb->instructions()[0]->id();

    if (inst->isTerminator()) {
        // Terminators leave the block: wait for full quiescence so no
        // in-flight node outlives its block activation.
        for (size_t i = 0; i < frame.nst.size(); ++i) {
            if (i != idx && frame.nst[i].phase != Phase::DoneNode)
                return false;
        }
    } else {
        for (const Value *op : inst->operands()) {
            if (op->valueKind() != Value::Kind::Instruction)
                continue;
            auto *dep = static_cast<const Instruction *>(op);
            if (dep->parent() != frame.bb)
                continue; // defined in an earlier block: in regs
            if (!frame.returnTo && argInstMark[dep->id()])
                continue; // parent-task value marshaled as an arg
            size_t dep_idx = dep->id() - base_id;
            if (frame.nst[dep_idx].phase != Phase::DoneNode)
                return false;
        }
    }

    // One token per static function unit per cycle (II = 1). The
    // stamp now+1 marks "fired in cycle `now`" (0 = never), so the
    // mark table needs no per-cycle clearing.
    uint64_t &mark = tile.firedMark[frame.fireBase + inst->id()];
    if (mark == now + 1)
        return false;
    mark = now + 1;
    ++tile.firedThisCycle;

    NodeState &st = frame.nst[idx];
    Opcode op = inst->opcode();

    auto finish_fixed = [&](unsigned latency) {
        st.phase = Phase::Exec;
        st.doneAt = now + std::max(1u, latency);
    };

    ++firedNodes;
    sim.progressEvent();

    if (ir::isIntBinary(op) || ir::isFloatBinary(op)) {
        frame.regs[inst->id()] = ir::evalBinary(
            op, inst->type(), evalOperand(frame, inst->operand(0)),
            evalOperand(frame, inst->operand(1)));
        finish_fixed(arch::opLatency(arch::opClassOf(op)));
        return true;
    }
    if (ir::isCast(op)) {
        auto *c = ir::cast<ir::CastInst>(inst);
        frame.regs[inst->id()] = ir::evalCast(
            op, c->src()->type(), c->type(),
            evalOperand(frame, c->src()));
        finish_fixed(arch::opLatency(arch::OpClass::Cast));
        return true;
    }

    switch (op) {
      case Opcode::ICmp:
      case Opcode::FCmp: {
        auto *cmp = ir::cast<ir::CmpInst>(inst);
        frame.regs[inst->id()] = ir::evalCmp(
            op, cmp->pred(), cmp->lhs()->type(),
            evalOperand(frame, cmp->lhs()),
            evalOperand(frame, cmp->rhs()));
        finish_fixed(arch::opLatency(arch::OpClass::Compare));
        return true;
      }
      case Opcode::Select: {
        auto *sel = ir::cast<ir::SelectInst>(inst);
        bool c = evalOperand(frame, sel->cond()).truthy();
        frame.regs[inst->id()] = evalOperand(
            frame, c ? sel->ifTrue() : sel->ifFalse());
        finish_fixed(arch::opLatency(arch::OpClass::Select));
        return true;
      }
      case Opcode::Gep: {
        auto *gep = ir::cast<ir::GepInst>(inst);
        uint64_t addr = evalOperand(frame, gep->base()).ptr();
        for (unsigned i = 0; i < gep->numIndices(); ++i) {
            int64_t index = evalOperand(frame, gep->index(i)).i;
            addr += static_cast<uint64_t>(
                index * static_cast<int64_t>(gep->stride(i)));
        }
        frame.regs[inst->id()] = RtValue::fromPtr(addr);
        finish_fixed(arch::opLatency(arch::OpClass::Gep));
        return true;
      }
      case Opcode::Alloca: {
        auto *al = ir::cast<ir::AllocaInst>(inst);
        // Stack RAM bump; space is taken from the shared image and
        // intentionally not recycled (see DESIGN.md).
        frame.regs[inst->id()] =
            RtValue::fromPtr(sim.mem().alloc(al->sizeBytes(), 8));
        finish_fixed(arch::opLatency(arch::OpClass::Alloca));
        return true;
      }
      case Opcode::Load: {
        auto *ld = ir::cast<ir::LoadInst>(inst);
        uint64_t addr = evalOperand(frame, ld->addr()).ptr();
        MemTicket ticket;
        if (!tile.box.submit(addr, false, now, ticket)) {
            mark = 0; // no structural issue happened
            --tile.firedThisCycle;
            --firedNodes;
            sim.retractProgressEvent();
            return false;
        }
        ir::Type t = ld->type();
        if (t.isFloat()) {
            frame.regs[inst->id()] = RtValue::fromFloat(
                t.bits() == 32 ? sim.mem().loadF32(addr)
                               : sim.mem().loadF64(addr));
        } else {
            frame.regs[inst->id()] = RtValue::fromInt(
                sim.mem().loadInt(addr, t.sizeBytes()));
        }
        st.phase = Phase::Mem;
        st.ticket = ticket;
        ++memInFlight;
        return true;
      }
      case Opcode::Store: {
        auto *sti = ir::cast<ir::StoreInst>(inst);
        uint64_t addr = evalOperand(frame, sti->addr()).ptr();
        MemTicket ticket;
        if (!tile.box.submit(addr, true, now, ticket)) {
            mark = 0;
            --tile.firedThisCycle;
            --firedNodes;
            sim.retractProgressEvent();
            return false;
        }
        ir::Type t = sti->value()->type();
        RtValue v = evalOperand(frame, sti->value());
        if (t.isFloat()) {
            if (t.bits() == 32)
                sim.mem().storeF32(addr, static_cast<float>(v.f));
            else
                sim.mem().storeF64(addr, v.f);
        } else {
            sim.mem().storeInt(addr, t.sizeBytes(), v.i);
        }
        st.phase = Phase::Mem;
        st.ticket = ticket;
        ++memInFlight;
        return true;
      }
      case Opcode::Call: {
        auto *call = ir::cast<ir::CallInst>(inst);
        std::vector<RtValue> args;
        args.reserve(call->numArgs());
        for (unsigned i = 0; i < call->numArgs(); ++i)
            args.push_back(evalOperand(frame, call->arg(i)));

        if (call->callee()->hasDetach()) {
            // Task call: spawn the callee's task unit, await value.
            tapas_assert(!frame.returnTo,
                         "task call inside an inlined leaf call");
            arch::Task *callee = task.calleeForCall(call);
            SpawnOutcome oc = sim.spawnTask(
                callee->sid(), std::move(args), self, call, now);
            if (oc == SpawnOutcome::Accepted)
                st.phase = Phase::CallWait;
            else
                noteSpawnFailure(st, oc, now);
            return true;
        }
        // Leaf call: push an inlined activation record.
        st.phase = Phase::LeafCall;
        pushLeafFrame(call, std::move(args), now);
        return true;
      }
      case Opcode::Br:
        finish_fixed(arch::opLatency(arch::OpClass::Branch));
        return true;
      case Opcode::Ret: {
        auto *ret = ir::cast<ir::RetInst>(inst);
        if (ret->hasValue())
            retVal = evalOperand(frame, ret->value());
        finish_fixed(arch::opLatency(arch::OpClass::Return));
        return true;
      }
      case Opcode::Detach: {
        auto *det = ir::cast<ir::DetachInst>(inst);
        arch::Task *child = task.childForDetach(det);
        std::vector<RtValue> args;
        args.reserve(child->args().size());
        for (Value *a : child->args())
            args.push_back(evalOperand(frame, a));
        SpawnOutcome oc = sim.spawnTask(child->sid(),
                                        std::move(args), self,
                                        nullptr, now);
        if (oc == SpawnOutcome::Accepted) {
            sim.unit(self.sid).noteChildSpawned(self.slot);
            finish_fixed(arch::opLatency(arch::OpClass::Detach));
        } else {
            noteSpawnFailure(st, oc, now);
        }
        return true;
      }
      case Opcode::Reattach:
        finish_fixed(sim.params().joinLatency);
        return true;
      case Opcode::Sync:
        st.phase = Phase::SyncWait; // resolved against the counter
        return true;
      default:
        tapas_panic("TXU cannot execute '%s'", ir::opcodeName(op));
    }
}

void
InstanceExec::advanceNode(Frame &frame, size_t idx, uint64_t now,
                          Tile &tile)
{
    NodeState &st = frame.nst[idx];
    const Instruction *inst = frame.bb->instructions()[idx].get();

    switch (st.phase) {
      case Phase::Exec:
        if (st.doneAt <= now) {
            st.phase = Phase::DoneNode;
            sim.progressEvent();
        }
        break;
      case Phase::Mem:
        if (tile.box.poll(st.ticket, now)) {
            st.phase = Phase::DoneNode;
            st.doneAt = now;
            --memInFlight;
            sim.progressEvent();
        }
        break;
      case Phase::SpawnRetry: {
        // Re-attempt the spawn each cycle (ready/valid back-pressure)
        // — except while backing off after a dropped handshake.
        if (now < st.nextRetryAt)
            break;
        if (st.spawnDropStreak > 0) {
            // This re-presentation is fault recovery, not ordinary
            // back-pressure: count it and tell the sinks.
            if (FaultInjector *inj = sim.faultInjector()) {
                ++inj->spawnRetries;
                sim.emitRecovery(now, "spawn_retry", self.sid);
            }
        }
        if (inst->opcode() == Opcode::Detach) {
            auto *det = ir::cast<const ir::DetachInst>(inst);
            arch::Task *child = task.childForDetach(det);
            std::vector<RtValue> args;
            for (Value *a : child->args())
                args.push_back(evalOperand(frame, a));
            SpawnOutcome oc = sim.spawnTask(child->sid(),
                                            std::move(args), self,
                                            nullptr, now);
            if (oc == SpawnOutcome::Accepted) {
                sim.unit(self.sid).noteChildSpawned(self.slot);
                st.phase = Phase::Exec;
                st.doneAt =
                    now + arch::opLatency(arch::OpClass::Detach);
                st.spawnDropStreak = 0;
                sim.progressEvent();
            } else {
                noteSpawnFailure(st, oc, now);
            }
        } else {
            auto *call = ir::cast<const ir::CallInst>(inst);
            arch::Task *callee = task.calleeForCall(call);
            std::vector<RtValue> args;
            for (unsigned i = 0; i < call->numArgs(); ++i)
                args.push_back(evalOperand(frame, call->arg(i)));
            SpawnOutcome oc = sim.spawnTask(callee->sid(),
                                            std::move(args), self,
                                            call, now);
            if (oc == SpawnOutcome::Accepted) {
                st.phase = Phase::CallWait;
                st.spawnDropStreak = 0;
                sim.progressEvent();
            } else {
                noteSpawnFailure(st, oc, now);
            }
        }
        break;
      }
      case Phase::SyncWait:
        // Resolved in step() against the unit's join counter.
        break;
      case Phase::CallWait:
        if (st.callDelivered) {
            if (!inst->type().isVoid())
                frame.regs[inst->id()] = st.callValue;
            st.phase = Phase::DoneNode;
            st.doneAt = now;
            sim.progressEvent();
        }
        break;
      case Phase::LeafCall:
        // Completed by the callee frame's Ret (see finishBlock).
        break;
      default:
        break;
    }
}

void
InstanceExec::noteSpawnFailure(NodeState &st, SpawnOutcome oc,
                               uint64_t now)
{
    st.phase = Phase::SpawnRetry;
    if (oc == SpawnOutcome::Dropped) {
        FaultInjector *inj = sim.faultInjector();
        st.nextRetryAt =
            now + (inj ? inj->spawnBackoff(st.spawnDropStreak) : 1);
        ++st.spawnDropStreak;
    } else {
        // Ordinary back-pressure: same retry-every-cycle cadence as
        // without an injector (a rejection also ends a drop streak).
        st.nextRetryAt = now;
        st.spawnDropStreak = 0;
    }
}

void
InstanceExec::pushLeafFrame(const ir::CallInst *call,
                            std::vector<RtValue> args, uint64_t now)
{
    (void)now;
    frames.emplace_back();
    Frame &f = frames.back();
    f.func = call->callee();
    f.fireBase = fidx.baseOf(f.func);
    f.regs.resize(f.func->numInstructions());
    f.argVals = std::move(args);
    f.returnTo = call;
}

uint64_t
InstanceExec::nextWake(uint64_t now, const DataBox &box,
                       bool allow_bulk,
                       std::vector<unsigned> *spawn_waits) const
{
    uint64_t wake = kNoWake;
    for (const Frame &frame : frames) {
        // A block that has not had a full firing sweep yet can fire
        // nodes next cycle with no timer involved: must tick.
        if (!frame.bb || frame.fresh)
            return 0;
        for (size_t i = 0; i < frame.nst.size(); ++i) {
            const NodeState &st = frame.nst[i];
            switch (st.phase) {
              case Phase::Exec:
                wake = std::min(wake, std::max(st.doneAt, now + 1));
                break;
              case Phase::Mem: {
                uint64_t c = box.completesAt(st.ticket);
                // An unissued ticket sits in the box's issue queue;
                // DataBox::stallWake governs that (veto or an
                // MSHR-retire bound), so it holds no timer here.
                if (c != 0)
                    wake = std::min(wake, std::max(c, now + 1));
                break;
              }
              case Phase::SpawnRetry: {
                if (st.nextRetryAt > now + 1) {
                    // Fault backoff: a real timer.
                    wake = std::min(wake, st.nextRetryAt);
                    break;
                }
                // Anything but plain back-pressure (rejected this
                // very cycle, no drop streak) must tick per cycle.
                if (st.spawnDropStreak > 0 || st.nextRetryAt != now)
                    return 0;
                // Re-presents next cycle. Rejected by a full target
                // queue, the rejection provably repeats each quiet
                // cycle — entries are freed only by timed
                // completions, which bound the skip globally — and
                // the target unit bulk-accounts the rejects.
                if (allow_bulk)
                    break;
                // Per-tile sleep: the target's frees are not
                // tile-locally boundable, but each free is an
                // observable event — report the target sid so the
                // tile can sleep as a registered spawn-waiter
                // (poked on every entry free), or veto if the
                // caller cannot register waits.
                if (!spawn_waits)
                    return 0;
                const Instruction *inst =
                    frame.bb->instructions()[i].get();
                arch::Task *target =
                    inst->opcode() == Opcode::Detach
                        ? task.childForDetach(
                              ir::cast<const ir::DetachInst>(inst))
                        : task.calleeForCall(
                              ir::cast<const ir::CallInst>(inst));
                spawn_waits->push_back(target->sid());
                break;
              }
              case Phase::CallWait:
                if (st.callDelivered)
                    return 0; // consumed by the next step()
                break;
              default:
                // Waiting nodes unblock only via the timers above;
                // SyncWait / LeafCall / DoneNode hold no timer.
                break;
            }
        }
    }
    return wake;
}

void
InstanceExec::phaseCensus(unsigned &exec, unsigned &mem,
                          unsigned &spawn) const
{
    for (const Frame &frame : frames) {
        for (const NodeState &st : frame.nst) {
            switch (st.phase) {
              case Phase::Exec:
                ++exec;
                break;
              case Phase::Mem:
                ++mem;
                break;
              case Phase::SpawnRetry:
                ++spawn;
                break;
              default:
                break;
            }
        }
    }
}

InstanceExec::Status
InstanceExec::step(uint64_t now, Tile &tile)
{
    tapas_assert(!done, "stepping a finished instance");
    Frame &frame = frames.back();

    if (!frame.bb) {
        // First cycle: enter the task (or callee) entry block.
        const BasicBlock *entry =
            frames.size() == 1 ? task.entry() : frame.func->entry();
        enterBlock(frame, entry, now);
        return Status::Running;
    }

    // This sweep gives every node of the block its firing chance, so
    // the block no longer blocks idle-skip (see Frame::fresh).
    frame.fresh = false;

    bool has_sync_wait = false;
    bool has_call_wait = false;
    bool busy = false; // Exec/Mem/SpawnRetry/LeafCall in flight

    for (size_t i = 0; i < frame.nst.size(); ++i) {
        NodeState &st = frame.nst[i];
        if (st.phase == Phase::Waiting)
            tryFire(frame, i, now, tile);
        if (st.phase != Phase::Waiting &&
            st.phase != Phase::DoneNode) {
            advanceNode(frame, i, now, tile);
        }
        switch (frame.nst[i].phase) {
          case Phase::SyncWait:
            // Resolve against the live join counter.
            has_sync_wait = true;
            break;
          case Phase::CallWait:
            has_call_wait = true;
            break;
          case Phase::Exec:
          case Phase::Mem:
          case Phase::SpawnRetry:
          case Phase::LeafCall:
            busy = true;
            break;
          default:
            break;
        }
    }

    // Sync resolution: the unit owns the join counter; ask it.
    if (has_sync_wait) {
        if (sim.unit(self.sid).childCountOf(self.slot) == 0) {
            for (size_t i = 0; i < frame.nst.size(); ++i) {
                if (frame.nst[i].phase == Phase::SyncWait) {
                    frame.nst[i].phase = Phase::Exec;
                    frame.nst[i].doneAt = now + 1;
                    sim.progressEvent();
                }
            }
            has_sync_wait = false;
            busy = true;
        }
    }

    // Block transition once everything in the block has completed.
    if (blockDone(frame))
        return finishBlock(now);

    if (has_sync_wait && memInFlight == 0 && !busy)
        return Status::WaitSync;
    if (has_call_wait && memInFlight == 0 && !busy)
        return Status::WaitCall;
    return Status::Running;
}

InstanceExec::Status
InstanceExec::finishBlock(uint64_t now)
{
    Frame &frame = frames.back();
    const Instruction *term = frame.bb->terminator();

    switch (term->opcode()) {
      case Opcode::Br: {
        auto *br = ir::cast<const ir::BranchInst>(term);
        const BasicBlock *next = br->ifTrue();
        if (br->isConditional() &&
            !evalOperand(frame, br->cond()).truthy()) {
            next = br->ifFalse();
        }
        enterBlock(frame, next, now);
        return Status::Running;
      }
      case Opcode::Detach: {
        auto *det = ir::cast<const ir::DetachInst>(term);
        enterBlock(frame, det->cont(), now);
        return Status::Running;
      }
      case Opcode::Sync: {
        auto *sy = ir::cast<const ir::SyncInst>(term);
        enterBlock(frame, sy->cont(), now);
        return Status::Running;
      }
      case Opcode::Reattach:
        tapas_assert(frames.size() == 1,
                     "reattach inside an inlined leaf call");
        done = true;
        return Status::Done;
      case Opcode::Ret: {
        if (frames.size() > 1) {
            // Leaf call returns: deliver to the caller's call node.
            const ir::CallInst *site = frame.returnTo;
            RtValue v = retVal;
            frames.pop_back();
            Frame &caller = frames.back();
            unsigned base = caller.bb->instructions()[0]->id();
            size_t idx = site->id() - base;
            tapas_assert(caller.bb->instructions()[idx].get() == site,
                         "leaf return to a foreign call site");
            if (!site->type().isVoid())
                caller.regs[site->id()] = v;
            caller.nst[idx].phase = Phase::DoneNode;
            caller.nst[idx].doneAt = now;
            sim.progressEvent();
            return Status::Running;
        }
        done = true;
        return Status::Done;
      }
      default:
        tapas_panic("bad block terminator at runtime");
    }
}

void
InstanceExec::deliverCallResult(const ir::CallInst *site, RtValue v)
{
    // Task calls only occur in the task frame (frames[0]).
    Frame &frame = frames.front();
    tapas_assert(frame.bb, "call result before instance started");
    unsigned base = frame.bb->instructions()[0]->id();
    size_t idx = site->id() - base;
    tapas_assert(idx < frame.nst.size() &&
                 frame.bb->instructions()[idx].get() == site,
                 "call result for a node outside the current block");
    NodeState &st = frame.nst[idx];
    tapas_assert(st.phase == Phase::CallWait,
                 "call result for a node not waiting");
    st.callDelivered = true;
    st.callValue = v;
}

} // namespace tapas::sim
