/**
 * @file
 * InstanceExec: dataflow execution of one dynamic task instance
 * (the per-tile TXU pipeline of paper Section III-C).
 *
 * Two operand-fetch/firing engines share all control logic:
 *
 *  - the lowered path (stepL / fireL / evalRef) executes from the
 *    design's ahead-of-time decoded micro-op tables (ir/lower.hh):
 *    operand fetch is an indexed load plus a 2-bit tag switch,
 *    in-block dependences and latencies are pre-resolved, spawn
 *    argument lists come from per-detach templates, and block
 *    completion reads the incrementally maintained Frame::doneCount
 *    instead of rescanning node states;
 *  - the legacy path (tryFire / evalOperand) walks ir::Instruction
 *    objects and is kept as the differential-testing oracle
 *    (TAPAS_NO_LOWERING=1).
 *
 * Both produce byte-identical results (pinned by
 * tests/sim_lower_test.cc). Everything outside the firing hot loop —
 * block transitions, suspension, wake computation, call delivery —
 * is mode-independent because lowered frames keep bb/prev maintained.
 */

#include "sim/accel.hh"

#include <algorithm>

namespace tapas::sim {

using ir::BasicBlock;
using ir::Instruction;
using ir::LoweredBlock;
using ir::MicroDep;
using ir::MicroKind;
using ir::MicroOp;
using ir::Opcode;
using ir::OperandRef;
using ir::RtValue;
using ir::Value;

InstanceExec::InstanceExec(AcceleratorSim &sim, const arch::Task &task,
                           const arch::FiringIndex &fidx, TaskRef self)
    : sim(sim), task(task), fidx(fidx), self(self)
{
    low = sim.loweredProgram();
    taskLf = low ? &low->funcOf(task.function()) : nullptr;
}

void
InstanceExec::reset()
{
    // Queue entries pool one InstanceExec per slot: return to the
    // freshly-constructed state but keep every buffer's capacity.
    // taskArgVals/taskArgPresent/argInstMark are re-assigned by the
    // next start().
    nFrames = 0;
    retVal = RtValue{};
    done = false;
    memInFlight = 0;
    firedNodes = 0;
    low = sim.loweredProgram();
    taskLf = low ? &low->funcOf(task.function()) : nullptr;
}

InstanceExec::Frame &
InstanceExec::acquireFrame()
{
    if (nFrames == frames.size())
        frames.emplace_back();
    Frame &f = frames[nFrames++];
    f.func = nullptr;
    f.returnTo = nullptr;
    f.bb = nullptr;
    f.prev = nullptr;
    f.fresh = true;
    f.fireBase = 0;
    f.lf = nullptr;
    f.lbb = nullptr;
    f.pool = nullptr;
    f.prevId = ir::kNoSucc;
    f.doneCount = 0;
    f.argVals.clear();
    f.nst.clear();
    return f;
}

void
InstanceExec::start(const std::vector<RtValue> &args)
{
    const auto &formals = task.args();
    tapas_assert(args.size() == formals.size(),
                 "task '%s' spawned with %zu args, expects %zu",
                 task.name().c_str(), args.size(), formals.size());

    Frame &f = acquireFrame();
    f.func = task.function();
    f.fireBase = fidx.baseOf(f.func);
    f.regs.assign(f.func->numInstructions(), RtValue{});
    if (low) {
        f.lf = taskLf;
        f.pool = sim.constPool(taskLf->index);
    }

    // Resolve the marshaled live-ins to dense slots once, here, so
    // the per-cycle operand path never touches an associative
    // container: Argument formals by argument index, enclosing-task
    // Instruction values straight into the frame's register file.
    taskArgVals.assign(f.func->numArgs(), RtValue{});
    taskArgPresent.assign(f.func->numArgs(), 0);
    argInstMark.assign(f.func->numInstructions(), 0);
    for (size_t i = 0; i < formals.size(); ++i) {
        const Value *v = formals[i];
        if (v->valueKind() == Value::Kind::Argument) {
            unsigned idx =
                static_cast<const ir::Argument *>(v)->index();
            taskArgVals[idx] = args[i];
            taskArgPresent[idx] = 1;
        } else {
            tapas_assert(v->valueKind() == Value::Kind::Instruction,
                         "task '%s' marshals a non-argument, "
                         "non-instruction live-in",
                         task.name().c_str());
            unsigned id = static_cast<const Instruction *>(v)->id();
            f.regs[id] = args[i];
            argInstMark[id] = 1;
        }
    }
}

RtValue
InstanceExec::evalOperand(const Frame &frame, const Value *v)
{
    switch (v->valueKind()) {
      case Value::Kind::ConstantInt:
        return RtValue::fromInt(
            static_cast<const ir::ConstantInt *>(v)->value());
      case Value::Kind::ConstantFloat:
        return RtValue::fromFloat(
            static_cast<const ir::ConstantFloat *>(v)->value());
      case Value::Kind::Global:
        return RtValue::fromPtr(sim.mem().addressOf(
            static_cast<const ir::GlobalVar *>(v)));
      case Value::Kind::Argument: {
        auto *arg = static_cast<const ir::Argument *>(v);
        if (frame.returnTo) {
            tapas_assert(arg->parent() == frame.func,
                         "leaf frame uses a foreign argument");
            return frame.argVals[arg->index()];
        }
        tapas_assert(arg->index() < taskArgPresent.size() &&
                     taskArgPresent[arg->index()],
                     "task '%s' uses unmarshaled argument '%s'",
                     task.name().c_str(), arg->name().c_str());
        return taskArgVals[arg->index()];
      }
      case Value::Kind::Instruction:
        // Values defined in enclosing tasks were marshaled straight
        // into the task frame's registers by start(); ids are
        // function-wide, so they never collide with instructions the
        // task itself executes.
        return frame.regs[static_cast<const Instruction *>(v)->id()];
      default:
        tapas_panic("unexpected operand kind in TXU");
    }
}

RtValue
InstanceExec::evalRef(const Frame &frame, OperandRef r) const
{
    switch (r.tag) {
      case OperandRef::Tag::Const:
        return frame.pool[r.index];
      case OperandRef::Tag::Arg:
        if (frame.returnTo)
            return frame.argVals[r.index];
        tapas_assert(r.index < taskArgPresent.size() &&
                     taskArgPresent[r.index],
                     "task '%s' uses unmarshaled argument #%u",
                     task.name().c_str(), r.index);
        return taskArgVals[r.index];
      default: // Reg
        return frame.regs[r.index];
    }
}

void
InstanceExec::enterBlock(Frame &frame, const BasicBlock *bb,
                         uint64_t now)
{
    frame.prev = frame.bb;
    frame.bb = bb;
    frame.nst.assign(bb->size(), NodeState{});
    frame.doneCount = 0;
    frame.fresh = true; // nodes fireable before any timer expires

    // Phis are wires out of the instance's registers: resolve all of
    // them in parallel at block entry, zero cost.
    if (frame.lf) {
        frame.prevId = frame.prev
                           ? static_cast<uint32_t>(frame.prev->id())
                           : ir::kNoSucc;
        frame.lbb = &frame.lf->blocks[bb->id()];
        const LoweredBlock &lb = *frame.lbb;
        if (lb.numPhis != 0) {
            tapas_assert(frame.prev,
                         "phi in a task/function entry block");
            const ir::PhiRoute &route =
                frame.lf->routeFor(lb, frame.prevId);
            const OperandRef *oprs =
                frame.lf->operands.data() + route.operandBegin;
            phiScratch.clear();
            phiScratch.reserve(lb.numPhis);
            for (uint32_t i = 0; i < lb.numPhis; ++i)
                phiScratch.push_back(evalRef(frame, oprs[i]));
            for (uint32_t i = 0; i < lb.numPhis; ++i) {
                frame.regs[lb.firstId + i] = phiScratch[i];
                frame.nst[i].phase = Phase::DoneNode;
                frame.nst[i].doneAt = now;
            }
            frame.doneCount = lb.numPhis;
        }
        return;
    }

    auto phis = bb->phis();
    if (!phis.empty()) {
        tapas_assert(frame.prev, "phi in a task/function entry block");
        phiScratch.clear();
        phiScratch.reserve(phis.size());
        for (ir::PhiInst *phi : phis)
            phiScratch.push_back(
                evalOperand(frame, phi->incomingFor(frame.prev)));
        for (size_t i = 0; i < phis.size(); ++i) {
            frame.regs[phis[i]->id()] = phiScratch[i];
            frame.nst[i].phase = Phase::DoneNode;
            frame.nst[i].doneAt = now;
        }
        frame.doneCount = static_cast<uint32_t>(phis.size());
    }
}

bool
InstanceExec::blockDone(const Frame &frame) const
{
    for (const NodeState &st : frame.nst) {
        if (st.phase != Phase::DoneNode)
            return false;
    }
    return true;
}

void
InstanceExec::marshalDetachArgs(Frame &frame, size_t idx,
                                const arch::Task &child)
{
    spawnScratch.clear();
    if (frame.lf) {
        const MicroOp &mop = frame.lf->ops[frame.lbb->opBegin + idx];
        const OperandRef *oprs =
            frame.lf->operands.data() + mop.opBegin;
        spawnScratch.reserve(mop.opCount);
        for (uint16_t i = 0; i < mop.opCount; ++i)
            spawnScratch.push_back(evalRef(frame, oprs[i]));
        return;
    }
    spawnScratch.reserve(child.args().size());
    for (Value *a : child.args())
        spawnScratch.push_back(evalOperand(frame, a));
}

void
InstanceExec::marshalCallArgs(Frame &frame, size_t idx,
                              const ir::CallInst *call)
{
    spawnScratch.clear();
    if (frame.lf) {
        const MicroOp &mop = frame.lf->ops[frame.lbb->opBegin + idx];
        const OperandRef *oprs =
            frame.lf->operands.data() + mop.opBegin;
        spawnScratch.reserve(mop.opCount);
        for (uint16_t i = 0; i < mop.opCount; ++i)
            spawnScratch.push_back(evalRef(frame, oprs[i]));
        return;
    }
    spawnScratch.reserve(call->numArgs());
    for (unsigned i = 0; i < call->numArgs(); ++i)
        spawnScratch.push_back(evalOperand(frame, call->arg(i)));
}

bool
InstanceExec::tryFire(Frame &frame, size_t idx, uint64_t now,
                      Tile &tile)
{
    const Instruction *inst = frame.bb->instructions()[idx].get();
    unsigned base_id = frame.bb->instructions()[0]->id();

    if (inst->isTerminator()) {
        // Terminators leave the block: wait for full quiescence so no
        // in-flight node outlives its block activation.
        for (size_t i = 0; i < frame.nst.size(); ++i) {
            if (i != idx && frame.nst[i].phase != Phase::DoneNode)
                return false;
        }
    } else {
        for (const Value *op : inst->operands()) {
            if (op->valueKind() != Value::Kind::Instruction)
                continue;
            auto *dep = static_cast<const Instruction *>(op);
            if (dep->parent() != frame.bb)
                continue; // defined in an earlier block: in regs
            if (!frame.returnTo && argInstMark[dep->id()])
                continue; // parent-task value marshaled as an arg
            size_t dep_idx = dep->id() - base_id;
            if (frame.nst[dep_idx].phase != Phase::DoneNode)
                return false;
        }
    }

    // One token per static function unit per cycle (II = 1). The
    // stamp now+1 marks "fired in cycle `now`" (0 = never), so the
    // mark table needs no per-cycle clearing.
    uint64_t &mark = tile.firedMark[frame.fireBase + inst->id()];
    if (mark == now + 1)
        return false;
    mark = now + 1;
    ++tile.firedThisCycle;

    NodeState &st = frame.nst[idx];
    Opcode op = inst->opcode();

    auto finish_fixed = [&](unsigned latency) {
        st.phase = Phase::Exec;
        st.doneAt = now + std::max(1u, latency);
    };

    ++firedNodes;
    sim.progressEvent();

    if (ir::isIntBinary(op) || ir::isFloatBinary(op)) {
        frame.regs[inst->id()] = ir::evalBinary(
            op, inst->type(), evalOperand(frame, inst->operand(0)),
            evalOperand(frame, inst->operand(1)));
        finish_fixed(arch::opLatency(arch::opClassOf(op)));
        return true;
    }
    if (ir::isCast(op)) {
        auto *c = ir::cast<ir::CastInst>(inst);
        frame.regs[inst->id()] = ir::evalCast(
            op, c->src()->type(), c->type(),
            evalOperand(frame, c->src()));
        finish_fixed(arch::opLatency(arch::OpClass::Cast));
        return true;
    }

    switch (op) {
      case Opcode::ICmp:
      case Opcode::FCmp: {
        auto *cmp = ir::cast<ir::CmpInst>(inst);
        frame.regs[inst->id()] = ir::evalCmp(
            op, cmp->pred(), cmp->lhs()->type(),
            evalOperand(frame, cmp->lhs()),
            evalOperand(frame, cmp->rhs()));
        finish_fixed(arch::opLatency(arch::OpClass::Compare));
        return true;
      }
      case Opcode::Select: {
        auto *sel = ir::cast<ir::SelectInst>(inst);
        bool c = evalOperand(frame, sel->cond()).truthy();
        frame.regs[inst->id()] = evalOperand(
            frame, c ? sel->ifTrue() : sel->ifFalse());
        finish_fixed(arch::opLatency(arch::OpClass::Select));
        return true;
      }
      case Opcode::Gep: {
        auto *gep = ir::cast<ir::GepInst>(inst);
        uint64_t addr = evalOperand(frame, gep->base()).ptr();
        for (unsigned i = 0; i < gep->numIndices(); ++i) {
            int64_t index = evalOperand(frame, gep->index(i)).i;
            addr += static_cast<uint64_t>(
                index * static_cast<int64_t>(gep->stride(i)));
        }
        frame.regs[inst->id()] = RtValue::fromPtr(addr);
        finish_fixed(arch::opLatency(arch::OpClass::Gep));
        return true;
      }
      case Opcode::Alloca: {
        auto *al = ir::cast<ir::AllocaInst>(inst);
        // Stack RAM bump; space is taken from the shared image and
        // intentionally not recycled (see DESIGN.md).
        frame.regs[inst->id()] =
            RtValue::fromPtr(sim.mem().alloc(al->sizeBytes(), 8));
        finish_fixed(arch::opLatency(arch::OpClass::Alloca));
        return true;
      }
      case Opcode::Load: {
        auto *ld = ir::cast<ir::LoadInst>(inst);
        uint64_t addr = evalOperand(frame, ld->addr()).ptr();
        MemTicket ticket;
        if (!tile.box.submit(addr, false, now, ticket)) {
            mark = 0; // no structural issue happened
            --tile.firedThisCycle;
            --firedNodes;
            sim.retractProgressEvent();
            return false;
        }
        ir::Type t = ld->type();
        if (t.isFloat()) {
            frame.regs[inst->id()] = RtValue::fromFloat(
                t.bits() == 32 ? sim.mem().loadF32(addr)
                               : sim.mem().loadF64(addr));
        } else {
            frame.regs[inst->id()] = RtValue::fromInt(
                sim.mem().loadInt(addr, t.sizeBytes()));
        }
        st.phase = Phase::Mem;
        st.ticket = ticket;
        ++memInFlight;
        return true;
      }
      case Opcode::Store: {
        auto *sti = ir::cast<ir::StoreInst>(inst);
        uint64_t addr = evalOperand(frame, sti->addr()).ptr();
        MemTicket ticket;
        if (!tile.box.submit(addr, true, now, ticket)) {
            mark = 0;
            --tile.firedThisCycle;
            --firedNodes;
            sim.retractProgressEvent();
            return false;
        }
        ir::Type t = sti->value()->type();
        RtValue v = evalOperand(frame, sti->value());
        if (t.isFloat()) {
            if (t.bits() == 32)
                sim.mem().storeF32(addr, static_cast<float>(v.f));
            else
                sim.mem().storeF64(addr, v.f);
        } else {
            sim.mem().storeInt(addr, t.sizeBytes(), v.i);
        }
        st.phase = Phase::Mem;
        st.ticket = ticket;
        ++memInFlight;
        return true;
      }
      case Opcode::Call: {
        auto *call = ir::cast<ir::CallInst>(inst);
        marshalCallArgs(frame, idx, call);

        if (call->callee()->hasDetach()) {
            // Task call: spawn the callee's task unit, await value.
            tapas_assert(!frame.returnTo,
                         "task call inside an inlined leaf call");
            arch::Task *callee = task.calleeForCall(call);
            SpawnOutcome oc = sim.spawnTask(
                callee->sid(), spawnScratch, self, call, now);
            if (oc == SpawnOutcome::Accepted)
                st.phase = Phase::CallWait;
            else
                noteSpawnFailure(st, oc, now);
            return true;
        }
        // Leaf call: push an inlined activation record.
        st.phase = Phase::LeafCall;
        pushLeafFrame(call, now);
        return true;
      }
      case Opcode::Br:
        finish_fixed(arch::opLatency(arch::OpClass::Branch));
        return true;
      case Opcode::Ret: {
        auto *ret = ir::cast<ir::RetInst>(inst);
        if (ret->hasValue())
            retVal = evalOperand(frame, ret->value());
        finish_fixed(arch::opLatency(arch::OpClass::Return));
        return true;
      }
      case Opcode::Detach: {
        auto *det = ir::cast<ir::DetachInst>(inst);
        arch::Task *child = task.childForDetach(det);
        marshalDetachArgs(frame, idx, *child);
        SpawnOutcome oc = sim.spawnTask(child->sid(), spawnScratch,
                                        self, nullptr, now);
        if (oc == SpawnOutcome::Accepted) {
            sim.unit(self.sid).noteChildSpawned(self.slot);
            finish_fixed(arch::opLatency(arch::OpClass::Detach));
        } else {
            noteSpawnFailure(st, oc, now);
        }
        return true;
      }
      case Opcode::Reattach:
        finish_fixed(sim.params().joinLatency);
        return true;
      case Opcode::Sync:
        st.phase = Phase::SyncWait; // resolved against the counter
        return true;
      default:
        tapas_panic("TXU cannot execute '%s'", ir::opcodeName(op));
    }
}

void
InstanceExec::fireL(Frame &frame, size_t idx, const MicroOp &mop,
                    uint64_t now, Tile &tile)
{
    const ir::LoweredFunc &lf = *frame.lf;
    const OperandRef *oprs = lf.operands.data() + mop.opBegin;

    // One token per static function unit per cycle (II = 1); see
    // tryFire for the generation-stamp scheme.
    uint64_t &mark = tile.firedMark[frame.fireBase + mop.id];
    if (mark == now + 1)
        return;
    mark = now + 1;
    ++tile.firedThisCycle;

    NodeState &st = frame.nst[idx];

    auto finish_fixed = [&](unsigned latency) {
        st.phase = Phase::Exec;
        st.doneAt = now + std::max(1u, latency);
    };

    ++firedNodes;
    sim.progressEvent();

    switch (mop.kind) {
      case MicroKind::Binary:
        frame.regs[mop.id] = ir::evalBinary(
            mop.op, mop.type, evalRef(frame, oprs[0]),
            evalRef(frame, oprs[1]));
        finish_fixed(mop.latency);
        return;
      case MicroKind::Cmp:
        frame.regs[mop.id] = ir::evalCmp(
            mop.op, mop.pred, mop.srcType, evalRef(frame, oprs[0]),
            evalRef(frame, oprs[1]));
        finish_fixed(mop.latency);
        return;
      case MicroKind::Select: {
        bool c = evalRef(frame, oprs[0]).truthy();
        frame.regs[mop.id] = evalRef(frame, c ? oprs[1] : oprs[2]);
        finish_fixed(mop.latency);
        return;
      }
      case MicroKind::Cast:
        frame.regs[mop.id] = ir::evalCast(
            mop.op, mop.srcType, mop.type, evalRef(frame, oprs[0]));
        finish_fixed(mop.latency);
        return;
      case MicroKind::Gep: {
        uint64_t addr = evalRef(frame, oprs[0]).ptr();
        const int64_t *strides = lf.strides.data() + mop.strideBegin;
        for (uint16_t i = 1; i < mop.opCount; ++i) {
            int64_t index = evalRef(frame, oprs[i]).i;
            addr += static_cast<uint64_t>(index * strides[i - 1]);
        }
        frame.regs[mop.id] = RtValue::fromPtr(addr);
        finish_fixed(mop.latency);
        return;
      }
      case MicroKind::Alloca:
        // Stack RAM bump; space is taken from the shared image and
        // intentionally not recycled (see DESIGN.md).
        frame.regs[mop.id] =
            RtValue::fromPtr(sim.mem().alloc(mop.allocaBytes, 8));
        finish_fixed(mop.latency);
        return;
      case MicroKind::Load: {
        uint64_t addr = evalRef(frame, oprs[0]).ptr();
        MemTicket ticket;
        if (!tile.box.submit(addr, false, now, ticket)) {
            mark = 0; // no structural issue happened
            --tile.firedThisCycle;
            --firedNodes;
            sim.retractProgressEvent();
            return;
        }
        if (mop.memIsFloat) {
            frame.regs[mop.id] = RtValue::fromFloat(
                mop.memBits == 32 ? sim.mem().loadF32(addr)
                                  : sim.mem().loadF64(addr));
        } else {
            frame.regs[mop.id] = RtValue::fromInt(
                sim.mem().loadInt(addr, mop.memSize));
        }
        st.phase = Phase::Mem;
        st.ticket = ticket;
        ++memInFlight;
        return;
      }
      case MicroKind::Store: {
        // Operand order: [0] = value, [1] = address.
        uint64_t addr = evalRef(frame, oprs[1]).ptr();
        MemTicket ticket;
        if (!tile.box.submit(addr, true, now, ticket)) {
            mark = 0;
            --tile.firedThisCycle;
            --firedNodes;
            sim.retractProgressEvent();
            return;
        }
        RtValue v = evalRef(frame, oprs[0]);
        if (mop.memIsFloat) {
            if (mop.memBits == 32)
                sim.mem().storeF32(addr, static_cast<float>(v.f));
            else
                sim.mem().storeF64(addr, v.f);
        } else {
            sim.mem().storeInt(addr, mop.memSize, v.i);
        }
        st.phase = Phase::Mem;
        st.ticket = ticket;
        ++memInFlight;
        return;
      }
      case MicroKind::Call: {
        auto *call = ir::cast<ir::CallInst>(mop.inst);
        marshalCallArgs(frame, idx, call);

        if (mop.calleeHasDetach) {
            // Task call: spawn the callee's task unit, await value.
            tapas_assert(!frame.returnTo,
                         "task call inside an inlined leaf call");
            arch::Task *callee = task.calleeForCall(call);
            SpawnOutcome oc = sim.spawnTask(
                callee->sid(), spawnScratch, self, call, now);
            if (oc == SpawnOutcome::Accepted)
                st.phase = Phase::CallWait;
            else
                noteSpawnFailure(st, oc, now);
            return;
        }
        // Leaf call: push an inlined activation record.
        st.phase = Phase::LeafCall;
        pushLeafFrame(call, now);
        return;
      }
      case MicroKind::Br:
        finish_fixed(mop.latency);
        return;
      case MicroKind::Ret:
        if (mop.opCount != 0)
            retVal = evalRef(frame, oprs[0]);
        finish_fixed(mop.latency);
        return;
      case MicroKind::Detach: {
        auto *det = ir::cast<ir::DetachInst>(mop.inst);
        arch::Task *child = task.childForDetach(det);
        marshalDetachArgs(frame, idx, *child);
        SpawnOutcome oc = sim.spawnTask(child->sid(), spawnScratch,
                                        self, nullptr, now);
        if (oc == SpawnOutcome::Accepted) {
            sim.unit(self.sid).noteChildSpawned(self.slot);
            finish_fixed(mop.latency);
        } else {
            noteSpawnFailure(st, oc, now);
        }
        return;
      }
      case MicroKind::Reattach:
        // Join latency is a run-time parameter (params().joinLatency),
        // deliberately not baked into the tables: the same lowered
        // design may be simulated under different parameterizations.
        finish_fixed(sim.params().joinLatency);
        return;
      case MicroKind::Sync:
        st.phase = Phase::SyncWait; // resolved against the counter
        return;
      case MicroKind::PhiNode:
      default:
        tapas_panic("TXU cannot execute '%s'", ir::opcodeName(mop.op));
    }
}

void
InstanceExec::advanceNode(Frame &frame, size_t idx, uint64_t now,
                          Tile &tile)
{
    NodeState &st = frame.nst[idx];

    switch (st.phase) {
      case Phase::Exec:
        if (st.doneAt <= now) {
            st.phase = Phase::DoneNode;
            ++frame.doneCount;
            sim.progressEvent();
        }
        break;
      case Phase::Mem:
        if (tile.box.poll(st.ticket, now)) {
            st.phase = Phase::DoneNode;
            st.doneAt = now;
            ++frame.doneCount;
            --memInFlight;
            sim.progressEvent();
        }
        break;
      case Phase::SpawnRetry: {
        // Re-attempt the spawn each cycle (ready/valid back-pressure)
        // — except while backing off after a dropped handshake.
        if (now < st.nextRetryAt)
            break;
        if (st.spawnDropStreak > 0) {
            // This re-presentation is fault recovery, not ordinary
            // back-pressure: count it and tell the sinks.
            if (FaultInjector *inj = sim.faultInjector()) {
                ++inj->spawnRetries;
                sim.emitRecovery(now, "spawn_retry", self.sid);
            }
        }
        const Instruction *inst = frame.bb->instructions()[idx].get();
        if (inst->opcode() == Opcode::Detach) {
            auto *det = ir::cast<const ir::DetachInst>(inst);
            arch::Task *child = task.childForDetach(det);
            marshalDetachArgs(frame, idx, *child);
            SpawnOutcome oc = sim.spawnTask(child->sid(),
                                            spawnScratch, self,
                                            nullptr, now);
            if (oc == SpawnOutcome::Accepted) {
                sim.unit(self.sid).noteChildSpawned(self.slot);
                st.phase = Phase::Exec;
                st.doneAt =
                    now + arch::opLatency(arch::OpClass::Detach);
                st.spawnDropStreak = 0;
                sim.progressEvent();
            } else {
                noteSpawnFailure(st, oc, now);
            }
        } else {
            auto *call = ir::cast<const ir::CallInst>(inst);
            arch::Task *callee = task.calleeForCall(call);
            marshalCallArgs(frame, idx, call);
            SpawnOutcome oc = sim.spawnTask(callee->sid(),
                                            spawnScratch, self,
                                            call, now);
            if (oc == SpawnOutcome::Accepted) {
                st.phase = Phase::CallWait;
                st.spawnDropStreak = 0;
                sim.progressEvent();
            } else {
                noteSpawnFailure(st, oc, now);
            }
        }
        break;
      }
      case Phase::SyncWait:
        // Resolved in step() against the unit's join counter.
        break;
      case Phase::CallWait:
        if (st.callDelivered) {
            const Instruction *inst =
                frame.bb->instructions()[idx].get();
            if (!inst->type().isVoid())
                frame.regs[inst->id()] = st.callValue;
            st.phase = Phase::DoneNode;
            st.doneAt = now;
            ++frame.doneCount;
            sim.progressEvent();
        }
        break;
      case Phase::LeafCall:
        // Completed by the callee frame's Ret (see finishBlock).
        break;
      default:
        break;
    }
}

void
InstanceExec::noteSpawnFailure(NodeState &st, SpawnOutcome oc,
                               uint64_t now)
{
    st.phase = Phase::SpawnRetry;
    if (oc == SpawnOutcome::Dropped) {
        FaultInjector *inj = sim.faultInjector();
        st.nextRetryAt =
            now + (inj ? inj->spawnBackoff(st.spawnDropStreak) : 1);
        ++st.spawnDropStreak;
    } else {
        // Ordinary back-pressure: same retry-every-cycle cadence as
        // without an injector (a rejection also ends a drop streak).
        st.nextRetryAt = now;
        st.spawnDropStreak = 0;
    }
}

void
InstanceExec::pushLeafFrame(const ir::CallInst *call, uint64_t now)
{
    (void)now;
    Frame &f = acquireFrame();
    f.func = call->callee();
    f.fireBase = fidx.baseOf(f.func);
    f.regs.assign(f.func->numInstructions(), RtValue{});
    f.argVals.assign(spawnScratch.begin(), spawnScratch.end());
    f.returnTo = call;
    if (low) {
        f.lf = &low->funcOf(f.func);
        f.pool = sim.constPool(f.lf->index);
    }
}

uint64_t
InstanceExec::nextWake(uint64_t now, const DataBox &box,
                       bool allow_bulk,
                       std::vector<unsigned> *spawn_waits) const
{
    uint64_t wake = kNoWake;
    for (size_t fi = 0; fi < nFrames; ++fi) {
        const Frame &frame = frames[fi];
        // A block that has not had a full firing sweep yet can fire
        // nodes next cycle with no timer involved: must tick.
        if (!frame.bb || frame.fresh)
            return 0;
        for (size_t i = 0; i < frame.nst.size(); ++i) {
            const NodeState &st = frame.nst[i];
            switch (st.phase) {
              case Phase::Exec:
                wake = std::min(wake, std::max(st.doneAt, now + 1));
                break;
              case Phase::Mem: {
                uint64_t c = box.completesAt(st.ticket);
                // An unissued ticket sits in the box's issue queue;
                // DataBox::stallWake governs that (veto or an
                // MSHR-retire bound), so it holds no timer here.
                if (c != 0)
                    wake = std::min(wake, std::max(c, now + 1));
                break;
              }
              case Phase::SpawnRetry: {
                if (st.nextRetryAt > now + 1) {
                    // Fault backoff: a real timer.
                    wake = std::min(wake, st.nextRetryAt);
                    break;
                }
                // Anything but plain back-pressure (rejected this
                // very cycle, no drop streak) must tick per cycle.
                if (st.spawnDropStreak > 0 || st.nextRetryAt != now)
                    return 0;
                // Re-presents next cycle. Rejected by a full target
                // queue, the rejection provably repeats each quiet
                // cycle — entries are freed only by timed
                // completions, which bound the skip globally — and
                // the target unit bulk-accounts the rejects.
                if (allow_bulk)
                    break;
                // Per-tile sleep: the target's frees are not
                // tile-locally boundable, but each free is an
                // observable event — report the target sid so the
                // tile can sleep as a registered spawn-waiter
                // (poked on every entry free), or veto if the
                // caller cannot register waits.
                if (!spawn_waits)
                    return 0;
                const Instruction *inst =
                    frame.bb->instructions()[i].get();
                arch::Task *target =
                    inst->opcode() == Opcode::Detach
                        ? task.childForDetach(
                              ir::cast<const ir::DetachInst>(inst))
                        : task.calleeForCall(
                              ir::cast<const ir::CallInst>(inst));
                spawn_waits->push_back(target->sid());
                break;
              }
              case Phase::CallWait:
                if (st.callDelivered)
                    return 0; // consumed by the next step()
                break;
              default:
                // Waiting nodes unblock only via the timers above;
                // SyncWait / LeafCall / DoneNode hold no timer.
                break;
            }
        }
    }
    return wake;
}

void
InstanceExec::phaseCensus(unsigned &exec, unsigned &mem,
                          unsigned &spawn) const
{
    for (size_t fi = 0; fi < nFrames; ++fi) {
        for (const NodeState &st : frames[fi].nst) {
            switch (st.phase) {
              case Phase::Exec:
                ++exec;
                break;
              case Phase::Mem:
                ++mem;
                break;
              case Phase::SpawnRetry:
                ++spawn;
                break;
              default:
                break;
            }
        }
    }
}

InstanceExec::Status
InstanceExec::step(uint64_t now, Tile &tile)
{
    tapas_assert(!done, "stepping a finished instance");
    Frame &frame = topFrame();

    if (!frame.bb) {
        // First cycle: enter the task (or callee) entry block.
        const BasicBlock *entry =
            nFrames == 1 ? task.entry() : frame.func->entry();
        enterBlock(frame, entry, now);
        return Status::Running;
    }

    // This sweep gives every node of the block its firing chance, so
    // the block no longer blocks idle-skip (see Frame::fresh).
    frame.fresh = false;

    if (frame.lf)
        return stepL(frame, now, tile);

    bool has_sync_wait = false;
    bool has_call_wait = false;
    bool busy = false; // Exec/Mem/SpawnRetry/LeafCall in flight

    for (size_t i = 0; i < frame.nst.size(); ++i) {
        NodeState &st = frame.nst[i];
        if (st.phase == Phase::Waiting)
            tryFire(frame, i, now, tile);
        if (st.phase != Phase::Waiting &&
            st.phase != Phase::DoneNode) {
            advanceNode(frame, i, now, tile);
        }
        switch (frame.nst[i].phase) {
          case Phase::SyncWait:
            // Resolve against the live join counter.
            has_sync_wait = true;
            break;
          case Phase::CallWait:
            has_call_wait = true;
            break;
          case Phase::Exec:
          case Phase::Mem:
          case Phase::SpawnRetry:
          case Phase::LeafCall:
            busy = true;
            break;
          default:
            break;
        }
    }

    // Sync resolution: the unit owns the join counter; ask it.
    if (has_sync_wait) {
        if (sim.unit(self.sid).childCountOf(self.slot) == 0) {
            for (size_t i = 0; i < frame.nst.size(); ++i) {
                if (frame.nst[i].phase == Phase::SyncWait) {
                    frame.nst[i].phase = Phase::Exec;
                    frame.nst[i].doneAt = now + 1;
                    sim.progressEvent();
                }
            }
            has_sync_wait = false;
            busy = true;
        }
    }

    // Block transition once everything in the block has completed.
    if (blockDone(frame))
        return finishBlock(now);

    if (has_sync_wait && memInFlight == 0 && !busy)
        return Status::WaitSync;
    if (has_call_wait && memInFlight == 0 && !busy)
        return Status::WaitCall;
    return Status::Running;
}

InstanceExec::Status
InstanceExec::stepL(Frame &frame, uint64_t now, Tile &tile)
{
    const ir::LoweredFunc &lf = *frame.lf;
    const MicroOp *ops = lf.ops.data() + frame.lbb->opBegin;
    const MicroDep *depPool = lf.deps.data();
    NodeState *nst = frame.nst.data();
    const size_t n = frame.nst.size();

    bool has_sync_wait = false;
    bool has_call_wait = false;
    bool busy = false; // Exec/Mem/SpawnRetry/LeafCall in flight

    for (size_t i = 0; i < n; ++i) {
        NodeState &st = nst[i];
        if (st.phase == Phase::Waiting) {
            const MicroOp &mop = ops[i];
            bool ready;
            // MicroKind orders the five terminators (Br..Sync) last.
            if (mop.kind >= MicroKind::Br) {
                // Terminators leave the block: wait for full
                // quiescence so no in-flight node outlives its block
                // activation.
                ready = frame.doneCount + 1 == n;
            } else {
                ready = true;
                const MicroDep *deps = depPool + mop.depBegin;
                for (uint16_t d = 0; d < mop.depCount; ++d) {
                    if (!frame.returnTo &&
                        argInstMark[deps[d].instId])
                        continue; // parent value marshaled as an arg
                    if (nst[deps[d].nstIdx].phase !=
                        Phase::DoneNode) {
                        ready = false;
                        break;
                    }
                }
            }
            if (ready)
                fireL(frame, i, mop, now, tile);
            if (st.phase == Phase::Waiting)
                continue; // not ready, token clash, or mem reject
        }
        // Advance + census, merged. The hot Exec/Mem polls are
        // inlined; the rare control phases share advanceNode() with
        // the legacy sweep, censusing the post-advance phase exactly
        // as step() does.
        switch (st.phase) {
          case Phase::DoneNode:
            break;
          case Phase::Exec:
            if (st.doneAt <= now) {
                st.phase = Phase::DoneNode;
                ++frame.doneCount;
                sim.progressEvent();
            } else {
                busy = true;
            }
            break;
          case Phase::Mem:
            if (tile.box.poll(st.ticket, now)) {
                st.phase = Phase::DoneNode;
                st.doneAt = now;
                ++frame.doneCount;
                --memInFlight;
                sim.progressEvent();
            } else {
                busy = true;
            }
            break;
          case Phase::SyncWait:
            has_sync_wait = true;
            break;
          case Phase::LeafCall:
            busy = true;
            break;
          case Phase::CallWait:
          case Phase::SpawnRetry:
            advanceNode(frame, i, now, tile);
            switch (st.phase) {
              case Phase::CallWait:
                has_call_wait = true;
                break;
              case Phase::Exec:
              case Phase::SpawnRetry:
                busy = true;
                break;
              default:
                break;
            }
            break;
          default:
            break;
        }
    }

    // Sync resolution: the unit owns the join counter; ask it.
    if (has_sync_wait) {
        if (sim.unit(self.sid).childCountOf(self.slot) == 0) {
            for (size_t i = 0; i < n; ++i) {
                if (nst[i].phase == Phase::SyncWait) {
                    nst[i].phase = Phase::Exec;
                    nst[i].doneAt = now + 1;
                    sim.progressEvent();
                }
            }
            has_sync_wait = false;
            busy = true;
        }
    }

    // Block transition once everything in the block has completed.
    if (frame.doneCount == n)
        return finishBlock(now);

    if (has_sync_wait && memInFlight == 0 && !busy)
        return Status::WaitSync;
    if (has_call_wait && memInFlight == 0 && !busy)
        return Status::WaitCall;
    return Status::Running;
}

InstanceExec::Status
InstanceExec::finishBlock(uint64_t now)
{
    Frame &frame = topFrame();
    const Instruction *term = frame.bb->terminator();

    switch (term->opcode()) {
      case Opcode::Br: {
        const BasicBlock *next;
        if (frame.lf) {
            const MicroOp &t = frame.lf->ops[frame.lbb->opEnd - 1];
            uint32_t nid =
                (t.opCount != 0 &&
                 !evalRef(frame, frame.lf->operands[t.opBegin])
                      .truthy())
                    ? t.succ1
                    : t.succ0;
            next = frame.lf->blocks[nid].bb;
        } else {
            auto *br = ir::cast<const ir::BranchInst>(term);
            next = br->ifTrue();
            if (br->isConditional() &&
                !evalOperand(frame, br->cond()).truthy()) {
                next = br->ifFalse();
            }
        }
        enterBlock(frame, next, now);
        return Status::Running;
      }
      case Opcode::Detach: {
        auto *det = ir::cast<const ir::DetachInst>(term);
        enterBlock(frame, det->cont(), now);
        return Status::Running;
      }
      case Opcode::Sync: {
        auto *sy = ir::cast<const ir::SyncInst>(term);
        enterBlock(frame, sy->cont(), now);
        return Status::Running;
      }
      case Opcode::Reattach:
        tapas_assert(nFrames == 1,
                     "reattach inside an inlined leaf call");
        done = true;
        return Status::Done;
      case Opcode::Ret: {
        if (nFrames > 1) {
            // Leaf call returns: deliver to the caller's call node.
            const ir::CallInst *site = frame.returnTo;
            RtValue v = retVal;
            --nFrames; // pop; the frame stays pooled for reuse
            Frame &caller = topFrame();
            unsigned base = caller.bb->instructions()[0]->id();
            size_t idx = site->id() - base;
            tapas_assert(caller.bb->instructions()[idx].get() == site,
                         "leaf return to a foreign call site");
            if (!site->type().isVoid())
                caller.regs[site->id()] = v;
            caller.nst[idx].phase = Phase::DoneNode;
            caller.nst[idx].doneAt = now;
            ++caller.doneCount;
            sim.progressEvent();
            return Status::Running;
        }
        done = true;
        return Status::Done;
      }
      default:
        tapas_panic("bad block terminator at runtime");
    }
}

void
InstanceExec::deliverCallResult(const ir::CallInst *site, RtValue v)
{
    // Task calls only occur in the task frame (frames[0]).
    Frame &frame = frames[0];
    tapas_assert(frame.bb, "call result before instance started");
    unsigned base = frame.bb->instructions()[0]->id();
    size_t idx = site->id() - base;
    tapas_assert(idx < frame.nst.size() &&
                 frame.bb->instructions()[idx].get() == site,
                 "call result for a node outside the current block");
    NodeState &st = frame.nst[idx];
    tapas_assert(st.phase == Phase::CallWait,
                 "call result for a node not waiting");
    st.callDelivered = true;
    st.callValue = v;
}

} // namespace tapas::sim
