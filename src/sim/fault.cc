#include "sim/fault.hh"

namespace tapas::sim {

const char *
failureKindName(SimFailure::Kind kind)
{
    switch (kind) {
      case SimFailure::Kind::None:
        return "none";
      case SimFailure::Kind::Deadlock:
        return "deadlock";
      case SimFailure::Kind::CycleLimit:
        return "cycle_limit";
      case SimFailure::Kind::FaultBudget:
        return "fault_budget";
      case SimFailure::Kind::SpawnFailed:
        return "spawn_failed";
      case SimFailure::Kind::Interrupted:
        return "interrupted";
    }
    return "unknown";
}

} // namespace tapas::sim
