/**
 * @file
 * Task-lifetime tracer: records spawn / dispatch / suspend / retire
 * events per dynamic task instance so accelerator schedules can be
 * inspected (the execution-flow view of paper Fig. 5). Attach one to
 * an AcceleratorSim before run(); dump as CSV for plotting or query
 * the aggregate statistics.
 */

#ifndef TAPAS_SIM_TRACE_HH
#define TAPAS_SIM_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace tapas::sim {

/** One task-lifetime event. */
struct TraceEvent
{
    enum class Kind : uint8_t {
        Spawn,    ///< accepted into a task queue
        Dispatch, ///< allocated a TXU tile (EXE)
        Suspend,  ///< vacated the tile (SYNC / wait-call)
        Retire,   ///< completed and joined its parent
    };

    uint64_t cycle = 0;
    Kind kind = Kind::Spawn;
    unsigned sid = 0;
    unsigned slot = 0;
};

/** Printable event-kind name. */
const char *traceKindName(TraceEvent::Kind kind);

/** Collects TraceEvents emitted by the simulator. */
class TaskTracer
{
  public:
    void
    record(uint64_t cycle, TraceEvent::Kind kind, unsigned sid,
           unsigned slot)
    {
        events.push_back(TraceEvent{cycle, kind, sid, slot});
    }

    const std::vector<TraceEvent> &all() const { return events; }

    /** Events of one kind (tests/statistics). */
    size_t countOf(TraceEvent::Kind kind) const;

    /**
     * Mean cycles between a task's spawn and its retire, over every
     * instance of `sid` (pass ~0u for all units).
     */
    double meanLifetime(unsigned sid = ~0u) const;

    /** Write "cycle,event,sid,slot" CSV (header included). */
    void dumpCsv(std::ostream &os) const;

    void clear() { events.clear(); }

  private:
    std::vector<TraceEvent> events;
};

} // namespace tapas::sim

#endif // TAPAS_SIM_TRACE_HH
