/**
 * @file
 * Task-lifetime tracer: records spawn / dispatch / suspend / retire
 * events per dynamic task instance so accelerator schedules can be
 * inspected (the execution-flow view of paper Fig. 5). One of the
 * obs::TraceSink implementations the simulator can drive — attach via
 * AcceleratorSim::setTracer() (or addSink()) before run(); dump as
 * CSV for plotting or query the aggregate statistics.
 *
 * Aggregates (countOf, meanLifetime) are maintained incrementally in
 * record(), so querying them between bench iterations is O(1) in the
 * event count; tests/sim_trace_test.cc pins them against a
 * brute-force scan of the event vector.
 */

#ifndef TAPAS_SIM_TRACE_HH
#define TAPAS_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "obs/sink.hh"

namespace tapas::sim {

/** One task-lifetime event. */
struct TraceEvent
{
    enum class Kind : uint8_t {
        Spawn,    ///< accepted into a task queue
        Dispatch, ///< allocated a TXU tile (EXE)
        Suspend,  ///< vacated the tile (SYNC / wait-call)
        Retire,   ///< completed and joined its parent
    };

    uint64_t cycle = 0;
    Kind kind = Kind::Spawn;
    unsigned sid = 0;
    unsigned slot = 0;
};

/** Number of TraceEvent kinds (aggregate table size). */
constexpr unsigned kNumTraceKinds = 4;

/** Printable event-kind name. */
const char *traceKindName(TraceEvent::Kind kind);

/** Collects TraceEvents emitted by the simulator. */
class TaskTracer : public obs::TraceSink
{
  public:
    /** Append one event, updating the running aggregates. */
    void record(uint64_t cycle, TraceEvent::Kind kind, unsigned sid,
                unsigned slot);

    const std::vector<TraceEvent> &all() const { return events; }

    /** Events of one kind; O(1). */
    size_t
    countOf(TraceEvent::Kind kind) const
    {
        return kindCounts[static_cast<unsigned>(kind)];
    }

    /**
     * Mean cycles between a task's spawn and its retire, over every
     * instance of `sid` (pass ~0u for all units); O(1) in the event
     * count.
     */
    double meanLifetime(unsigned sid = ~0u) const;

    /** Write "cycle,event,sid,slot" CSV (header included). */
    void dumpCsv(std::ostream &os) const;

    void clear();

    // --- obs::TraceSink ----------------------------------------------

    void
    taskSpawn(uint64_t cycle, unsigned sid, unsigned slot,
              unsigned /*parent_sid*/, unsigned /*parent_slot*/)
        override
    {
        record(cycle, TraceEvent::Kind::Spawn, sid, slot);
    }

    void
    taskDispatch(uint64_t cycle, unsigned sid, unsigned slot,
                 unsigned /*tile*/) override
    {
        record(cycle, TraceEvent::Kind::Dispatch, sid, slot);
    }

    void
    taskSuspend(uint64_t cycle, unsigned sid, unsigned slot) override
    {
        record(cycle, TraceEvent::Kind::Suspend, sid, slot);
    }

    void
    taskRetire(uint64_t cycle, unsigned sid, unsigned slot) override
    {
        record(cycle, TraceEvent::Kind::Retire, sid, slot);
    }

  private:
    /** Running spawn->retire aggregate for one sid (or for all). */
    struct LifetimeAgg
    {
        double sum = 0.0;
        uint64_t count = 0;

        double
        mean() const
        {
            return count ? sum / static_cast<double>(count) : 0.0;
        }
    };

    /** Hashable (sid, slot) key for the open-spawn table. */
    static uint64_t
    spawnKey(unsigned sid, unsigned slot)
    {
        return (static_cast<uint64_t>(sid) << 32) | slot;
    }

    std::vector<TraceEvent> events;
    std::array<size_t, kNumTraceKinds> kindCounts{};

    /** Most recent un-retired spawn cycle per (sid, slot). */
    std::unordered_map<uint64_t, uint64_t> openSpawns;

    /** Indexed by sid; grown on demand (sid space is dense). */
    std::vector<LifetimeAgg> perSid;
    LifetimeAgg allSids;
};

} // namespace tapas::sim

#endif // TAPAS_SIM_TRACE_HH
