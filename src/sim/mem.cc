#include "sim/mem.hh"

#include <algorithm>

#include "support/logging.hh"

namespace tapas::sim {

SharedCache::SharedCache(const arch::MemSystemParams &params)
    : params(params)
{
    tapas_assert(params.lineBytes >= 8 &&
                 (params.lineBytes & (params.lineBytes - 1)) == 0,
                 "line size must be a power of two >= 8");
    uint32_t num_lines = params.cacheBytes / params.lineBytes;
    tapas_assert(params.ways >= 1 && num_lines >= params.ways,
                 "cache too small for its associativity");
    numSets = num_lines / params.ways;
    lines.resize(static_cast<size_t>(numSets) * params.ways);
    mshrs.resize(params.mshrs);
}

void
SharedCache::reset()
{
    for (Line &l : lines)
        l = Line{};
    for (Mshr &m : mshrs)
        m = Mshr{};
    portsUsed = 0;
    outstanding = 0;
    mshrAllocCycle = ~0ull;
    dramNextFree = 0;
}

void
SharedCache::beginCycle(uint64_t now)
{
    portsUsed = 0;
    if (outstanding == 0)
        return;
    for (Mshr &m : mshrs) {
        if (m.busy && m.readyAt <= now) {
            m.busy = false;
            --outstanding;
        }
    }
}

CacheResult
SharedCache::request(uint64_t addr, bool is_store, uint64_t now)
{
    CacheResult res;
    const bool has_port = portsUsed < params.portsPerCycle;

    if (params.useScratchpad) {
        if (!has_port) {
            ++portRejects;
            emitStall(now, /*mshr_full=*/false);
            return res;
        }
        // Banked scratchpad: fixed latency, no misses (data staged
        // ahead of invocation, as in streaming HLS designs).
        ++portsUsed;
        ++accesses;
        ++hits;
        (void)is_store;
        res.accepted = true;
        res.hit = true;
        res.completesAt = now + params.scratchpadLatency;
        applyResponseFault(res, now);
        return res;
    }

    uint64_t line_addr = lineAddrOf(addr);
    uint64_t set = line_addr % numSets;
    Line *set_base = &lines[set * params.ways];

    // Hit path (the tag probe mutates nothing until accepted).
    for (unsigned w = 0; w < params.ways; ++w) {
        Line &l = set_base[w];
        if (l.valid && l.tag == line_addr) {
            if (!has_port) {
                ++portRejects;
                emitStall(now, /*mshr_full=*/false);
                return res;
            }
            ++portsUsed;
            ++accesses;
            ++hits;
            l.lastUse = now;
            l.dirty = l.dirty || is_store;
            uint64_t start = std::max(now, l.readyAt);
            res.accepted = true;
            res.hit = true;
            res.completesAt = start + params.hitLatency;
            applyResponseFault(res, now);
            return res;
        }
    }

    // Merge into an in-flight miss to the same line.
    for (Mshr &m : mshrs) {
        if (m.busy && m.lineAddr == line_addr) {
            if (!has_port) {
                ++portRejects;
                emitStall(now, /*mshr_full=*/false);
                return res;
            }
            ++portsUsed;
            ++accesses;
            ++misses;
            ++mshrMerges;
            emitMiss(now);
            res.accepted = true;
            res.completesAt = m.readyAt + params.hitLatency;
            applyResponseFault(res, now);
            return res;
        }
    }

    // New miss: need a free MSHR. MSHR exhaustion is classified
    // before port contention: whether the request is accepted is the
    // same either way (both hazards reject), but an MSHR-full reject
    // repeats identically every cycle until an MSHR retires — the
    // stall-span witness DataBox::stallWake relies on — whereas a
    // port reject depends on which *other* requesters happened to
    // win ports this cycle. Classifying the longer-lived structural
    // hazard first makes the per-cycle reject stream of a stalled
    // requester independent of unrelated same-cycle traffic.
    Mshr *free_mshr = nullptr;
    for (Mshr &m : mshrs) {
        if (!m.busy) {
            free_mshr = &m;
            break;
        }
    }
    if (!free_mshr) {
        ++mshrRejects;
        res.mshrFull = true;
        emitStall(now, /*mshr_full=*/true);
        return res;
    }
    if (!has_port) {
        ++portRejects;
        emitStall(now, /*mshr_full=*/false);
        return res;
    }

    ++portsUsed;
    ++accesses;
    ++misses;
    emitMiss(now);

    // Victim selection (LRU within the set).
    Line *victim = set_base;
    for (unsigned w = 1; w < params.ways; ++w) {
        Line &l = set_base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lastUse < victim->lastUse)
            victim = &l;
    }
    uint64_t start = std::max(now + params.hitLatency, dramNextFree);
    if (victim->valid && victim->dirty) {
        ++writebacks;
        dramNextFree = start + lineTransferCycles();
        start = dramNextFree;
    }
    uint64_t fill_done =
        start + params.dramLatency + lineTransferCycles();
    dramNextFree = start + lineTransferCycles();

    victim->valid = true;
    victim->dirty = is_store;
    victim->tag = line_addr;
    victim->lastUse = now;
    victim->readyAt = fill_done;

    free_mshr->busy = true;
    free_mshr->lineAddr = line_addr;
    free_mshr->readyAt = fill_done;
    ++outstanding;
    mshrAllocCycle = now;

    res.accepted = true;
    res.completesAt = fill_done + params.hitLatency;
    applyResponseFault(res, now);
    return res;
}

void
SharedCache::applyResponseFault(CacheResult &res, uint64_t now)
{
    if (!injector)
        return;
    switch (injector->memFault()) {
      case FaultInjector::MemFault::Drop:
        res.dropped = true;
        for (obs::TraceSink *s : sinks)
            s->faultInjected(now, "mem_drop", ~0u);
        break;
      case FaultInjector::MemFault::Delay:
        res.completesAt += injector->config().memDelayCycles;
        for (obs::TraceSink *s : sinks)
            s->faultInjected(now, "mem_delay", ~0u);
        break;
      case FaultInjector::MemFault::None:
        break;
    }
}

} // namespace tapas::sim
