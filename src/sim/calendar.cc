#include "sim/calendar.hh"

#include <algorithm>

#include "support/logging.hh"

namespace tapas::sim {

WakeupCalendar::WakeupCalendar(unsigned window_bits)
    : window(1ull << window_bits)
{
    tapas_assert(window_bits >= 6 && window_bits <= 20,
                 "calendar window must be 64..1M buckets");
    bits.resize(window / 64, 0);
}

void
WakeupCalendar::reset(uint64_t now)
{
    std::fill(bits.begin(), bits.end(), 0);
    cursor = now;
    wheelCount = 0;
    overflow.clear();
    overflowMin = kNone;
}

void
WakeupCalendar::schedule(uint64_t cycle)
{
    tapas_assert(cycle > cursor,
                 "scheduling a wake at or before the cursor");
    if (cycle - cursor > window) {
        overflow.push_back(cycle);
        overflowMin = std::min(overflowMin, cycle);
        return;
    }
    uint64_t b = bucketOf(cycle);
    uint64_t &word = bits[b >> 6];
    uint64_t mask = 1ull << (b & 63);
    if (!(word & mask)) {
        word |= mask;
        ++wheelCount;
    }
}

void
WakeupCalendar::advanceTo(uint64_t now)
{
    if (now <= cursor)
        return;
    if (now - cursor >= window) {
        // A jump past the whole window: every wheel entry is due.
        std::fill(bits.begin(), bits.end(), 0);
        wheelCount = 0;
    } else {
        for (uint64_t c = cursor + 1; c <= now && wheelCount; ++c) {
            uint64_t b = bucketOf(c);
            uint64_t &word = bits[b >> 6];
            uint64_t mask = 1ull << (b & 63);
            if (word & mask) {
                word &= ~mask;
                --wheelCount;
            }
        }
    }
    cursor = now;
    if (overflowMin != kNone && overflowMin <= cursor + window)
        drainOverflow();
}

void
WakeupCalendar::drainOverflow()
{
    std::vector<uint64_t> keep;
    overflowMin = kNone;
    for (uint64_t c : overflow) {
        if (c <= cursor)
            continue; // already processed; drop
        if (c - cursor <= window) {
            uint64_t b = bucketOf(c);
            uint64_t &word = bits[b >> 6];
            uint64_t mask = 1ull << (b & 63);
            if (!(word & mask)) {
                word |= mask;
                ++wheelCount;
            }
        } else {
            keep.push_back(c);
            overflowMin = std::min(overflowMin, c);
        }
    }
    overflow.swap(keep);
}

uint64_t
WakeupCalendar::nextEventAt() const
{
    uint64_t best = overflowMin;
    if (wheelCount) {
        // Scan occupancy words from the cursor's bucket forward,
        // wrapping once around the wheel. Entries are confined to
        // (cursor, cursor+window], so the first set bit found in
        // ring order is the earliest cycle.
        uint64_t start = bucketOf(cursor + 1);
        uint64_t nwords = window / 64;
        for (uint64_t i = 0; i < nwords + 1; ++i) {
            uint64_t wi = ((start >> 6) + i) % nwords;
            uint64_t word = bits[wi];
            if (i == 0) {
                // Mask off bits before the start bucket in its word.
                word &= ~0ull << (start & 63);
            } else if (i == nwords) {
                // Wrapped fully: only bits before the start bucket.
                word = bits[wi] & ~(~0ull << (start & 63));
            }
            if (!word)
                continue;
            uint64_t bit = static_cast<uint64_t>(
                __builtin_ctzll(word));
            uint64_t bucket = (wi << 6) | bit;
            // Map the bucket back to its absolute cycle: the unique
            // cycle in (cursor, cursor+window] with this index.
            uint64_t base = cursor - bucketOf(cursor);
            uint64_t cyc = base + bucket;
            if (cyc <= cursor)
                cyc += window;
            best = std::min(best, cyc);
            break;
        }
    }
    return best;
}

} // namespace tapas::sim
