#include "sim/trace.hh"

#include <ostream>

#include "support/logging.hh"

namespace tapas::sim {

const char *
traceKindName(TraceEvent::Kind kind)
{
    switch (kind) {
      case TraceEvent::Kind::Spawn: return "spawn";
      case TraceEvent::Kind::Dispatch: return "dispatch";
      case TraceEvent::Kind::Suspend: return "suspend";
      case TraceEvent::Kind::Retire: return "retire";
    }
    tapas_panic("unknown trace kind");
}

void
TaskTracer::record(uint64_t cycle, TraceEvent::Kind kind,
                   unsigned sid, unsigned slot)
{
    events.push_back(TraceEvent{cycle, kind, sid, slot});
    ++kindCounts[static_cast<unsigned>(kind)];

    // Slots are reused; match each retire with the most recent spawn
    // of the same (sid, slot), exactly as a full scan would.
    uint64_t key = spawnKey(sid, slot);
    if (kind == TraceEvent::Kind::Spawn) {
        openSpawns[key] = cycle;
    } else if (kind == TraceEvent::Kind::Retire) {
        auto it = openSpawns.find(key);
        if (it != openSpawns.end()) {
            double life = static_cast<double>(cycle - it->second);
            openSpawns.erase(it);
            if (sid >= perSid.size())
                perSid.resize(sid + 1);
            LifetimeAgg &agg = perSid[sid];
            agg.sum += life;
            ++agg.count;
            allSids.sum += life;
            ++allSids.count;
        }
    }
}

double
TaskTracer::meanLifetime(unsigned sid) const
{
    if (sid == ~0u)
        return allSids.mean();
    return sid < perSid.size() ? perSid[sid].mean() : 0.0;
}

void
TaskTracer::dumpCsv(std::ostream &os) const
{
    os << "cycle,event,sid,slot\n";
    for (const TraceEvent &e : events) {
        os << e.cycle << ',' << traceKindName(e.kind) << ',' << e.sid
           << ',' << e.slot << '\n';
    }
}

void
TaskTracer::clear()
{
    events.clear();
    kindCounts.fill(0);
    openSpawns.clear();
    perSid.clear();
    allSids = LifetimeAgg{};
}

} // namespace tapas::sim
