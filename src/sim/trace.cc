#include "sim/trace.hh"

#include <map>
#include <ostream>

#include "support/logging.hh"

namespace tapas::sim {

const char *
traceKindName(TraceEvent::Kind kind)
{
    switch (kind) {
      case TraceEvent::Kind::Spawn: return "spawn";
      case TraceEvent::Kind::Dispatch: return "dispatch";
      case TraceEvent::Kind::Suspend: return "suspend";
      case TraceEvent::Kind::Retire: return "retire";
    }
    tapas_panic("unknown trace kind");
}

size_t
TaskTracer::countOf(TraceEvent::Kind kind) const
{
    size_t n = 0;
    for (const TraceEvent &e : events) {
        if (e.kind == kind)
            ++n;
    }
    return n;
}

double
TaskTracer::meanLifetime(unsigned sid) const
{
    // Slots are reused; match each retire with the most recent spawn
    // of the same (sid, slot).
    std::map<std::pair<unsigned, unsigned>, uint64_t> open;
    double sum = 0;
    uint64_t count = 0;
    for (const TraceEvent &e : events) {
        if (sid != ~0u && e.sid != sid)
            continue;
        auto key = std::make_pair(e.sid, e.slot);
        if (e.kind == TraceEvent::Kind::Spawn) {
            open[key] = e.cycle;
        } else if (e.kind == TraceEvent::Kind::Retire) {
            auto it = open.find(key);
            if (it != open.end()) {
                sum += static_cast<double>(e.cycle - it->second);
                ++count;
                open.erase(it);
            }
        }
    }
    return count ? sum / static_cast<double>(count) : 0.0;
}

void
TaskTracer::dumpCsv(std::ostream &os) const
{
    os << "cycle,event,sid,slot\n";
    for (const TraceEvent &e : events) {
        os << e.cycle << ',' << traceKindName(e.kind) << ',' << e.sid
           << ',' << e.slot << '\n';
    }
}

} // namespace tapas::sim
