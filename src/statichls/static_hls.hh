/**
 * @file
 * Static-HLS baseline, standing in for the Intel HLS Compiler v17.1
 * in the paper's Table V comparison (Section V-E).
 *
 * Industry HLS statically schedules: it accepts only kernels whose
 * parallelism is a fixed-trip parallel loop, unrolls the body by a
 * constant factor, modulo-schedules it with *deterministic* operation
 * latencies, and replaces the cache with streaming DRAM interfaces
 * backed by large block-RAM burst buffers. This module implements
 * that compilation model:
 *
 *  - feasibility analysis: the kernel must be a single non-nested
 *    parallel loop with a leaf body (no dynamic spawning, recursion,
 *    or conditional pipeline stages) — the same programs the paper
 *    found convertible (saxpy, image scale);
 *  - initiation-interval computation from stream-port and DRAM
 *    bandwidth constraints over the unrolled body;
 *  - resource estimation: statically scheduled datapaths avoid the
 *    ready/valid handshake logic (cheaper ALMs/op) but pay for deep
 *    stream buffers (BRAM-heavy, as Table V shows);
 *  - a runtime model: fill latency + groups x II at the achieved
 *    Fmax.
 */

#ifndef TAPAS_STATICHLS_STATIC_HLS_HH
#define TAPAS_STATICHLS_STATIC_HLS_HH

#include <string>

#include "fpga/model.hh"
#include "hls/compile.hh"

namespace tapas::statichls {

/** Result of "compiling" a kernel with the static-HLS model. */
struct StaticHlsReport
{
    /** False when static parallelism cannot express the kernel. */
    bool feasible = false;

    /** Human-readable reason when infeasible. */
    std::string reason;

    unsigned unroll = 1;

    /** Cycles per unrolled iteration group at steady state. */
    double groupII = 1.0;

    /** Distinct streaming interfaces inferred. */
    unsigned streams = 0;

    uint32_t alms = 0;
    uint32_t regs = 0;
    uint32_t brams = 0;
    double fmaxMhz = 0;
    double powerW = 0;

    /**
     * Kernel runtime for a given trip count.
     *
     * @param trips dynamic iterations of the parallel loop
     * @return milliseconds
     */
    double runtimeMs(uint64_t trips) const;

    /** Pipeline fill cycles (stream warm-up = DRAM latency). */
    double fillCycles = 0;
};

/** Tunables for the static-HLS model. */
struct StaticHlsParams
{
    unsigned unroll = 3;

    /** Elements a stream delivers per cycle. */
    double streamElemsPerCycle = 1.0;

    /** Effective DRAM bytes per cycle across all streams. */
    double dramBytesPerCycle = 2.0;

    /** DRAM latency in cycles (paper Table V: 270 ns at 150 MHz). */
    double dramLatencyCycles = 40.0;
};

/**
 * Analyze and "compile" the kernel with the static-HLS model.
 *
 * @param design TAPAS Stage 1/2 output for the same program (reused
 *        for its task/dataflow analysis)
 * @param dev target FPGA
 * @param params model tunables
 */
StaticHlsReport compileStaticHls(const hls::AcceleratorDesign &design,
                                 const fpga::Device &dev,
                                 const StaticHlsParams &params);

} // namespace tapas::statichls

#endif // TAPAS_STATICHLS_STATIC_HLS_HH
