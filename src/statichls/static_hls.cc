#include "statichls/static_hls.hh"

#include "analysis/loopinfo.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace tapas::statichls {

using arch::Dataflow;
using arch::OpClass;
using arch::Task;

double
StaticHlsReport::runtimeMs(uint64_t trips) const
{
    tapas_assert(feasible, "runtime of an infeasible kernel");
    double groups = std::ceil(static_cast<double>(trips) /
                              std::max(1u, unroll));
    double cycles = fillCycles + groups * groupII;
    return cycles / (fmaxMhz * 1e3);
}

StaticHlsReport
compileStaticHls(const hls::AcceleratorDesign &design,
                 const fpga::Device &dev,
                 const StaticHlsParams &params)
{
    StaticHlsReport rep;
    rep.unroll = params.unroll;

    const arch::TaskGraph &tg = *design.taskGraph;
    const Task *root = tg.root();

    // ---- feasibility: one flat parallel loop with a leaf body -----
    for (const auto &t : tg.tasks()) {
        if (t->isRecursive()) {
            rep.reason = "recursive parallelism cannot be statically "
                         "scheduled (no program stack in HLS)";
            return rep;
        }
        if (!t->taskCalls().empty()) {
            rep.reason = "dynamically spawned function tasks are not "
                         "expressible as a static loop nest";
            return rep;
        }
    }
    // Walk a perfectly nested chain of parallel loops down to the
    // innermost body; Intel HLS collapses/pipelines such nests. Any
    // task with several spawn sites (conditional or heterogeneous
    // spawning) defeats static scheduling.
    const Task *body = root;
    while (!body->spawnSites().empty()) {
        if (body->spawnSites().size() != 1) {
            rep.reason = "conditional/heterogeneous task spawning "
                         "requires dynamic parallelism";
            return rep;
        }
        body = body->spawnSites()[0].child;
    }
    if (body == root) {
        rep.reason = "kernel is not a parallel loop";
        return rep;
    }

    // Loops nested *inside* the body pipeline statically only when
    // the nest is simple: at most one inner loop level (the
    // grain-coarsened element loop Tapir emits). Multi-level inner
    // nests (stencil's neighbourhood loops, the RLE scanners) defeat
    // static pipelining — exactly the cases the paper could not
    // convert.
    {
        analysis::LoopInfo li(*body->function());
        std::set<const ir::BasicBlock *> body_blocks(
            body->blocks().begin(), body->blocks().end());
        for (const auto &lp : li.loops()) {
            if (!body_blocks.count(lp->header))
                continue;
            for (const analysis::Loop *sub : lp->subLoops) {
                if (body_blocks.count(sub->header)) {
                    rep.reason =
                        "data-dependent inner loop nest defeats "
                        "static pipelining";
                    return rep;
                }
            }
        }
    }

    rep.feasible = true;

    // ---- interface inference: one stream per distinct base array --
    const Dataflow &df = design.dataflow(body->sid());
    std::set<const ir::Value *> bases;
    uint64_t bytes_per_iter = 0;
    size_t mem_ops = 0;
    size_t max_per_array = 1;
    std::map<const ir::Value *, size_t> per_array;
    for (const auto &node : df.nodes()) {
        if (node.isArgIn || !node.inst || !node.inst->isMemAccess())
            continue;
        ++mem_ops;
        const ir::Value *addr =
            node.inst->opcode() == ir::Opcode::Load
                ? ir::cast<ir::LoadInst>(node.inst)->addr()
                : ir::cast<ir::StoreInst>(node.inst)->addr();
        const ir::Value *base = addr;
        if (addr->valueKind() == ir::Value::Kind::Instruction) {
            if (auto *gep = ir::dyn_cast<ir::GepInst>(
                    static_cast<const ir::Instruction *>(addr))) {
                base = gep->base();
            }
        }
        bases.insert(base);
        max_per_array = std::max(max_per_array, ++per_array[base]);
        if (node.inst->opcode() == ir::Opcode::Load) {
            bytes_per_iter += ir::cast<ir::LoadInst>(node.inst)
                                  ->type().sizeBytes();
        } else {
            bytes_per_iter += ir::cast<ir::StoreInst>(node.inst)
                                  ->value()->type().sizeBytes();
        }
    }
    rep.streams = static_cast<unsigned>(bases.size());

    // ---- initiation interval ----------------------------------------
    // Stream-port bound: the busiest array delivers one element per
    // cycle; an unrolled group needs accesses x unroll beats.
    double stream_ii = static_cast<double>(max_per_array) *
                       params.unroll / params.streamElemsPerCycle;
    // DRAM bandwidth bound across every stream.
    double dram_ii = static_cast<double>(bytes_per_iter) *
                     params.unroll / params.dramBytesPerCycle;
    rep.groupII = std::max({1.0, stream_ii, dram_ii});
    rep.fillCycles = params.dramLatencyCycles +
                     static_cast<double>(df.pipelineDepth());

    // ---- resources ----------------------------------------------------
    // Static scheduling drops the per-node handshake (~45% of node
    // area) but replicates the datapath per unroll copy.
    uint32_t alm = 800; // control FSM + host interface
    uint32_t reg = 1100;
    for (const auto &node : df.nodes()) {
        if (node.isArgIn)
            continue;
        fpga::OpCosts c = fpga::opCosts(node.cls);
        alm += static_cast<uint32_t>(c.alm * 0.55) * params.unroll;
        reg += static_cast<uint32_t>(c.reg * 0.75) * params.unroll;
    }
    // Stream load/store units + deep burst buffers (the BRAM cost the
    // paper highlights: "Intel HLS appears to generate large stream
    // buffers in its load and store interfaces").
    alm += 260 * rep.streams;
    reg += 420 * rep.streams;
    rep.brams = 8 + 4 * rep.streams * params.unroll;

    rep.alms = alm;
    rep.regs = reg;

    double util = static_cast<double>(alm) / dev.totalAlms;
    rep.fmaxMhz = dev.baseMhz * (1.0 - 0.10 - 0.18 * util);
    rep.powerW = fpga::estimatePower(dev, rep.alms, rep.regs,
                                     rep.brams, rep.fmaxMhz);
    return rep;
}

} // namespace tapas::statichls
