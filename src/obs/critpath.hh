/**
 * @file
 * Critical-path & bottleneck analysis: explain *why* a simulated
 * accelerator run took as long as it did, end to end.
 *
 * CriticalPathSink is a TraceSink that reconstructs the dynamic task
 * DAG from the simulator's spawn / dispatch / suspend / retire events
 * (parent identity and tile placement are part of the events) plus
 * the per-residency stall counts of residencyStalls(). analyze() then
 * walks the DAG backward from the final (root) retire and partitions
 * every cycle of the run into critical-path segments, each attributed
 * to one of four classes:
 *
 *   compute            the chain was executing dataflow on a tile
 *   queue_wait         the chain sat in a task queue (spawn -> first
 *                      dispatch, or re-ready -> re-dispatch after a
 *                      join) — more tiles / deeper queues help here
 *   mem_stall          the chain was on a tile but every in-flight
 *                      node was waiting on a memory response
 *   spawn_backpressure the chain was on a tile but blocked
 *                      re-presenting a spawn (target port busy or
 *                      queue full), or the host kick itself was
 *                      being re-presented
 *
 * Two invariants are pinned by tests/critpath_test.cc:
 *   (1) the critical-path length equals the run's simulated cycles;
 *   (2) the per-class attributions sum to the path length.
 *
 * The report also carries what-if speedup bounds ("zero queue-wait
 * => <= 1.31x", "infinite tiles on unit 'fib' => <= 2.4x"), computed
 * by re-walking the recorded path with the chosen segment class
 * zeroed — so a bound is always >= 1 and zeroing a superset of
 * segments never predicts less speedup — and per-unit slack
 * aggregates for the instances that were *not* on the path.
 *
 * The walk itself: a suspend gap of an instance is charged to the
 * *releasing* child — the last child whose retire falls inside the
 * gap (its join is what re-readied the parent) — by recursing into
 * that child's own timeline; whatever remains of the gap after the
 * releasing retire is queue-wait (the parent was ready, waiting for
 * a tile). Tile residencies are split using the residencyStalls()
 * counts; the split is exact in total per residency, rendered as
 * contiguous mem / spawn / compute runs (the within-residency
 * ordering is synthesized, the totals are measured).
 */

#ifndef TAPAS_OBS_CRITPATH_HH
#define TAPAS_OBS_CRITPATH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/sink.hh"
#include "support/json.hh"

namespace tapas::obs {

/** Critical-path segment classes. */
enum class SegClass : uint8_t {
    Compute,
    QueueWait,
    MemStall,
    SpawnBackpressure,
};

constexpr unsigned kNumSegClasses = 4;

/** Stable snake_case class name (stat keys, JSON, reports). */
const char *segClassName(SegClass c);

/** One contiguous span of the critical path. */
struct CritSegment
{
    uint64_t begin = 0; ///< first cycle (inclusive)
    uint64_t end = 0;   ///< one past the last cycle
    SegClass cls = SegClass::Compute;
    unsigned sid = 0;   ///< unit that owned the chain here

    uint64_t length() const { return end - begin; }

    bool
    operator==(const CritSegment &o) const
    {
        return begin == o.begin && end == o.end && cls == o.cls &&
               sid == o.sid;
    }
};

/** One what-if speedup bound: zeroing `what` => <= `bound` x. */
struct WhatIf
{
    /** Human label ("zero queue-wait", "infinite tiles on 'fib'"). */
    std::string what;

    /** Stable key ("queue_wait", "unit.fib.queue_wait", ...). */
    std::string key;

    /** Critical-path cycles the scenario removes. */
    uint64_t zeroedCycles = 0;

    /** Upper speedup bound: path / (path - zeroed). */
    double bound = 1.0;

    bool
    operator==(const WhatIf &o) const
    {
        return what == o.what && key == o.key &&
               zeroedCycles == o.zeroedCycles && bound == o.bound;
    }
};

/** Per-unit critical-path share and slack aggregate. */
struct UnitPathStats
{
    std::string name;
    uint64_t instances = 0;     ///< retired instances of this unit
    uint64_t critInstances = 0; ///< of which contributed path cycles
    uint64_t critCycles = 0;    ///< path cycles attributed here
    uint64_t critQueueWait = 0; ///< of which queue-wait
    double meanSlack = 0;       ///< mean slack, retired non-root insts
    uint64_t maxSlack = 0;

    bool
    operator==(const UnitPathStats &o) const
    {
        return name == o.name && instances == o.instances &&
               critInstances == o.critInstances &&
               critCycles == o.critCycles &&
               critQueueWait == o.critQueueWait &&
               meanSlack == o.meanSlack && maxSlack == o.maxSlack;
    }
};

/** Everything analyze() learned about one run. */
struct BottleneckReport
{
    /**
     * A root instance retired, so there was a path to analyze. A
     * failed run (deadlock, cycle limit, fault budget) or a run with
     * no events yields an empty-but-valid report with valid = false.
     */
    bool valid = false;

    /** Critical-path length == simulated cycles of the run. */
    uint64_t cycles = 0;

    /** Per-class attribution; sums to `cycles` (the invariant). */
    uint64_t classCycles[kNumSegClasses] = {0, 0, 0, 0};

    /** The full path partition, ordered by begin cycle. */
    std::vector<CritSegment> segments;

    /** What-if bounds, in deterministic order. */
    std::vector<WhatIf> whatIfs;

    /** Per-unit shares, sid order. */
    std::vector<UnitPathStats> units;

    uint64_t classOf(SegClass c) const
    {
        return classCycles[static_cast<unsigned>(c)];
    }

    /** Class with the most critical cycles (ties: lowest index). */
    SegClass dominant() const;

    /** Rendered human-readable report. */
    std::string text() const;

    /** Deterministic JSON document (byte-stable across runs). */
    Json toJson() const;

    /** Flatten aggregates into a stats map under "critpath.*". */
    void appendTo(std::map<std::string, double> &out) const;

    bool operator==(const BottleneckReport &o) const;
};

/**
 * The DAG-reconstructing sink. Attach for a run, then analyze().
 * Reusable: configure() (issued by AcceleratorSim::addSink) resets
 * all state.
 */
class CriticalPathSink : public TraceSink
{
  public:
    void configure(const std::vector<UnitInfo> &units) override;

    void taskSpawn(uint64_t cycle, unsigned sid, unsigned slot,
                   unsigned parent_sid,
                   unsigned parent_slot) override;
    void taskDispatch(uint64_t cycle, unsigned sid, unsigned slot,
                      unsigned tile) override;
    void residencyStalls(uint64_t cycle, unsigned sid, unsigned slot,
                         uint64_t mem_stall,
                         uint64_t spawn_stall) override;
    void taskSuspend(uint64_t cycle, unsigned sid,
                     unsigned slot) override;
    void taskRetire(uint64_t cycle, unsigned sid,
                    unsigned slot) override;

    /**
     * Reconstruct the critical path of the recorded run. Safe to call
     * on a failed or empty run: the result is then an
     * empty-but-valid report (valid = false, all counts zero).
     */
    BottleneckReport analyze() const;

    /** Dynamic task instances recorded (tests). */
    size_t numInstances() const { return insts.size(); }

  private:
    static constexpr size_t kNone = ~size_t{0};

    /** One closed (or still-open) tile residency. */
    struct Residency
    {
        uint64_t start = 0; ///< dispatch cycle
        uint64_t end = 0;   ///< suspend/retire cycle + 1 (0 = open)
        uint64_t mem = 0;   ///< fully-mem-stalled cycles inside
        uint64_t spawn = 0; ///< fully-spawn-stalled cycles inside
    };

    /** One dynamic task instance (slot generations disambiguated). */
    struct Instance
    {
        unsigned sid = 0;
        uint64_t spawnCycle = 0;
        size_t parent = kNone;       ///< index into insts
        std::vector<size_t> children;
        std::vector<Residency> res;
        uint64_t retireCycle = 0;
        bool retired = false;

        /** residencyStalls() payload awaiting the closing event. */
        uint64_t pendMem = 0;
        uint64_t pendSpawn = 0;
    };

    using Key = std::pair<unsigned, unsigned>; ///< (sid, slot)

    /** Close the instance's open residency at `cycle` + 1. */
    void closeResidency(Instance &in, uint64_t cycle);

    std::vector<std::string> unitNames;
    std::vector<Instance> insts;
    std::map<Key, size_t> live; ///< (sid, slot) -> current instance
    size_t root = kNone;
};

} // namespace tapas::obs

#endif // TAPAS_OBS_CRITPATH_HH
