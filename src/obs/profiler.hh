/**
 * @file
 * Cycle-attribution profiler: explains *where the cycles went* for
 * every task unit of a simulated accelerator.
 *
 * Each simulated cycle of each unit lands in exactly one bucket:
 *
 *   busy        >= 1 tile accepted or executed dataflow work
 *   stall_mem   instances on tiles, all blocked on memory responses
 *   stall_spawn instances on tiles, all blocked on spawn-port
 *               back-pressure (target queue full or losing
 *               arbitration)
 *   queue_full  occupied but nothing on a tile making progress —
 *               instances parked in the queue at a sync / task call
 *               or READY with every tile pipeline full
 *   idle        no live instances in the unit
 *
 * The invariant "buckets sum to simulated cycles x units" is what
 * turns the paper's Table 3 utilization single number into an
 * explained breakdown, and is pinned by tests/obs_test.cc.
 */

#ifndef TAPAS_OBS_PROFILER_HH
#define TAPAS_OBS_PROFILER_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/sink.hh"

namespace tapas::obs {

/** Where one unit-cycle went. */
enum class CycleBucket : uint8_t {
    Busy,
    StallMem,
    StallSpawn,
    QueueFull,
    Idle,
};

constexpr unsigned kNumBuckets = 5;

/** Stable snake_case bucket name (stat keys, report columns). */
const char *bucketName(CycleBucket b);

/** Per-unit cycle-bucket accumulator. */
class CycleProfiler
{
  public:
    /** Size the per-unit tables; must precede note(). */
    void configure(const std::vector<UnitInfo> &units);

    /** Attribute one cycle of unit `sid` to bucket `b`. */
    void
    note(unsigned sid, CycleBucket b)
    {
        ++counts[sid][static_cast<unsigned>(b)];
    }

    /**
     * Attribute `n` cycles at once (idle-skip bulk accounting; the
     * buckets-sum-to-cycles invariant holds across skipped spans).
     */
    void
    note(unsigned sid, CycleBucket b, uint64_t n)
    {
        counts[sid][static_cast<unsigned>(b)] += n;
    }

    /** Configured unit count. */
    unsigned numUnits() const
    {
        return static_cast<unsigned>(names.size());
    }

    /** Cycles of unit `sid` attributed to `b`. */
    uint64_t
    bucket(unsigned sid, CycleBucket b) const
    {
        return counts.at(sid)[static_cast<unsigned>(b)];
    }

    /** All buckets of unit `sid` summed (== simulated cycles). */
    uint64_t totalOf(unsigned sid) const;

    /** Grand total over units (== cycles x numUnits). */
    uint64_t total() const;

    /** Render the per-unit breakdown as an aligned text table. */
    void report(std::ostream &os) const;

    /** report() into a string. */
    std::string reportString() const;

    /**
     * Append every bucket keyed "profile.<unit>.<bucket>" (plus
     * "profile.<unit>.cycles"), the shape RunResult::stats carries
     * into the JSON export.
     */
    void appendTo(std::map<std::string, double> &out) const;

    /** Drop all attribution (fresh run on a reused profiler). */
    void clear();

  private:
    std::vector<std::string> names;
    std::vector<std::array<uint64_t, kNumBuckets>> counts;
};

} // namespace tapas::obs

#endif // TAPAS_OBS_PROFILER_HH
