/**
 * @file
 * Observability sink interface: the one funnel through which the
 * cycle-level simulator reports *what happened when* to any number of
 * attached observers (timeline tracers, profilers, statistics).
 *
 * The simulator emits task-lifetime events (spawn / dispatch /
 * suspend / retire, with parent identity and tile placement),
 * spawn-port arbitration rejections, cache misses and structural
 * stalls, plus periodic queue-occupancy and outstanding-miss samples.
 * A sink overrides only what it cares about; every hook defaults to a
 * no-op, so an attached-but-uninterested sink costs one virtual call
 * per event. With no sinks attached the simulator skips emission
 * entirely.
 *
 * This module depends only on src/support/ so that both the simulator
 * and the driver can link it without cycles.
 */

#ifndef TAPAS_OBS_SINK_HH
#define TAPAS_OBS_SINK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tapas::obs {

/** What a sink needs to know about one task unit up front. */
struct UnitInfo
{
    /** Static task name (unique per accelerator). */
    std::string name;

    /** Number of execution tiles in this unit. */
    unsigned tiles = 1;
};

/** Receives simulator events; override only what you observe. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once at attach time with the accelerator's units. */
    virtual void configure(const std::vector<UnitInfo> &/*units*/) {}

    /**
     * A task instance was accepted into a task queue.
     * `parent_sid` is ~0u for the root (host-launched) instance.
     */
    virtual void
    taskSpawn(uint64_t /*cycle*/, unsigned /*sid*/, unsigned /*slot*/,
              unsigned /*parent_sid*/, unsigned /*parent_slot*/)
    {}

    /** An instance was allocated tile `tile` (entered EXE). */
    virtual void
    taskDispatch(uint64_t /*cycle*/, unsigned /*sid*/,
                 unsigned /*slot*/, unsigned /*tile*/)
    {}

    /** An instance vacated its tile (blocked at sync / task call). */
    virtual void
    taskSuspend(uint64_t /*cycle*/, unsigned /*sid*/,
                unsigned /*slot*/)
    {}

    /** An instance completed and joined its parent. */
    virtual void
    taskRetire(uint64_t /*cycle*/, unsigned /*sid*/, unsigned /*slot*/)
    {}

    /**
     * Emitted immediately before the taskSuspend/taskRetire that
     * closes a tile residency: of the residency's cycles, how many
     * the instance spent making no dataflow progress because every
     * in-flight node was blocked on a memory response (`mem_stall`)
     * or on spawn-port back-pressure (`spawn_stall`). The remaining
     * residency cycles carried compute. Counted only while a sink is
     * attached; enables cycle-exact critical-path attribution
     * (obs/critpath.hh).
     */
    virtual void
    residencyStalls(uint64_t /*cycle*/, unsigned /*sid*/,
                    unsigned /*slot*/, uint64_t /*mem_stall*/,
                    uint64_t /*spawn_stall*/)
    {}

    /**
     * A spawn aimed at unit `sid` was rejected this cycle:
     * `queue_full` distinguishes a full task queue from losing the
     * one-accept-per-cycle port arbitration.
     */
    virtual void
    spawnRejected(uint64_t /*cycle*/, unsigned /*sid*/,
                  bool /*queue_full*/)
    {}

    /** The shared L1 recorded a (non-merged or merged) miss. */
    virtual void cacheMiss(uint64_t /*cycle*/) {}

    /**
     * The shared L1 rejected a request: `mshr_full` distinguishes
     * MSHR exhaustion from port contention.
     */
    virtual void cacheStall(uint64_t /*cycle*/, bool /*mshr_full*/) {}

    /**
     * A fault was injected. `kind` is a stable snake_case label
     * ("spawn_drop", "queue_corrupt", "mem_drop", "mem_delay",
     * "tile_stuck"); `sid` is the afflicted unit, or ~0u for the
     * shared memory system.
     */
    virtual void
    faultInjected(uint64_t /*cycle*/, const char * /*kind*/,
                  unsigned /*sid*/)
    {}

    /**
     * A recovery action fired ("spawn_retry", "task_replay",
     * "mem_reissue"); `sid` as in faultInjected().
     */
    virtual void
    faultRecovered(uint64_t /*cycle*/, const char * /*kind*/,
                   unsigned /*sid*/)
    {}

    /**
     * The run stopped cooperatively at a cycle boundary (deadline or
     * cancellation) before the root task retired. `reason` is a
     * stable token ("deadline", "cancelled", "cycle_deadline").
     */
    virtual void
    runInterrupted(uint64_t /*cycle*/, const char * /*reason*/)
    {}

    /** A checkpoint snapshot was committed at this cycle. */
    virtual void checkpointWritten(uint64_t /*cycle*/) {}

    /** Periodic sample: queue occupancy of unit `sid`. */
    virtual void
    queueSample(uint64_t /*cycle*/, unsigned /*sid*/,
                unsigned /*occupancy*/)
    {}

    /** Periodic sample: outstanding L1 misses (busy MSHRs). */
    virtual void missSample(uint64_t /*cycle*/, unsigned /*outstanding*/)
    {}
};

} // namespace tapas::obs

#endif // TAPAS_OBS_SINK_HH
