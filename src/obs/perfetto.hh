/**
 * @file
 * Chrome trace-event (Perfetto) exporter: a TraceSink that turns a
 * simulation into a JSON timeline any `ui.perfetto.dev` /
 * `chrome://tracing` instance can open.
 *
 * Layout of the exported trace:
 *
 *  - one *process* per task unit (named after the static task), with
 *    one *thread* per execution tile plus a "queue" thread;
 *  - duration events ("ph":"X"): "Spawn" on the queue thread covers
 *    a task instance's queue residency (spawn -> first dispatch),
 *    "Dispatch" on the tile thread covers each tile occupancy
 *    (dispatch -> suspend/retire), and "Retire" marks completion;
 *  - flow arrows ("ph":"s"/"f") connect a parent's executing slice to
 *    the child's first dispatch, rendering the spawn tree;
 *  - counter tracks ("ph":"C"): per-unit queue depth and cumulative
 *    spawn rejections, and a "memory" process carrying outstanding
 *    L1 misses plus cumulative misses and stalls.
 *
 * Timestamps are simulated cycles reported as microseconds (1 cycle
 * == 1 us), so the UI's time axis reads directly in cycles.
 */

#ifndef TAPAS_OBS_PERFETTO_HH
#define TAPAS_OBS_PERFETTO_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/critpath.hh"
#include "obs/sink.hh"

namespace tapas::obs {

/** Accumulates simulator events; write() emits trace-event JSON. */
class PerfettoTraceSink : public TraceSink
{
  public:
    void configure(const std::vector<UnitInfo> &units) override;

    void taskSpawn(uint64_t cycle, unsigned sid, unsigned slot,
                   unsigned parent_sid,
                   unsigned parent_slot) override;
    void taskDispatch(uint64_t cycle, unsigned sid, unsigned slot,
                      unsigned tile) override;
    void taskSuspend(uint64_t cycle, unsigned sid,
                     unsigned slot) override;
    void taskRetire(uint64_t cycle, unsigned sid,
                    unsigned slot) override;
    void spawnRejected(uint64_t cycle, unsigned sid,
                       bool queue_full) override;
    void faultInjected(uint64_t cycle, const char *kind,
                       unsigned sid) override;
    void faultRecovered(uint64_t cycle, const char *kind,
                        unsigned sid) override;
    void runInterrupted(uint64_t cycle,
                        const char *reason) override;
    void checkpointWritten(uint64_t cycle) override;
    void cacheMiss(uint64_t cycle) override;
    void cacheStall(uint64_t cycle, bool mshr_full) override;
    void queueSample(uint64_t cycle, unsigned sid,
                     unsigned occupancy) override;
    void missSample(uint64_t cycle, unsigned outstanding) override;

    /**
     * Append a "critical path" process whose single track renders
     * the run's critical-path partition (obs/critpath.hh): one slice
     * per segment, named after its class, carrying the owning unit
     * as an arg. Call after the run, before write().
     */
    void addCriticalPathTrack(const std::vector<CritSegment> &segs);

    /** Serialize the accumulated trace as one JSON document. */
    void write(std::ostream &os) const;

    /** write() into a string (tests, in-memory use). */
    std::string dump() const;

    /** Events accumulated so far (tests). */
    size_t numEvents() const { return events.size(); }

  private:
    /** (sid, slot) key for per-instance open-interval tracking. */
    using Key = std::pair<unsigned, unsigned>;

    struct OpenExec
    {
        uint64_t since = 0;
        unsigned tile = 0;
    };

    /** Append one pre-serialized trace-event object. */
    void push(std::string json) { events.push_back(std::move(json)); }

    /** pid of unit `sid` / of the synthetic memory process. */
    unsigned unitPid(unsigned sid) const { return sid + 1; }
    unsigned memoryPid() const
    {
        return static_cast<unsigned>(unitNames.size()) + 1;
    }

    void emitCounter(uint64_t cycle, unsigned pid,
                     const std::string &track, const std::string &key,
                     uint64_t value);

    std::vector<std::string> unitNames;
    std::vector<std::string> events;

    std::map<Key, uint64_t> openSpawn;   ///< spawn -> first dispatch
    std::map<Key, OpenExec> openExec;    ///< dispatch -> suspend/retire
    std::map<Key, uint64_t> pendingFlow; ///< spawn flow ids by child
    uint64_t nextFlowId = 1;

    /** Instant marker for a fault/recovery event. */
    void emitFaultInstant(uint64_t cycle, const char *prefix,
                          const char *kind, unsigned sid);

    uint64_t spawnRejectsTotal = 0;
    std::map<unsigned, uint64_t> spawnRejectsByUnit;
    uint64_t cacheMisses = 0;
    uint64_t cacheStalls = 0;
    uint64_t faultsTotal = 0;
    uint64_t recoveriesTotal = 0;
};

} // namespace tapas::obs

#endif // TAPAS_OBS_PERFETTO_HH
