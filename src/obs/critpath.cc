#include "obs/critpath.hh"

#include <algorithm>
#include <cassert>

#include "support/logging.hh"

namespace tapas::obs {

const char *
segClassName(SegClass c)
{
    switch (c) {
    case SegClass::Compute:
        return "compute";
    case SegClass::QueueWait:
        return "queue_wait";
    case SegClass::MemStall:
        return "mem_stall";
    case SegClass::SpawnBackpressure:
        return "spawn_backpressure";
    }
    return "?";
}

SegClass
BottleneckReport::dominant() const
{
    unsigned best = 0;
    for (unsigned i = 1; i < kNumSegClasses; i++)
        if (classCycles[i] > classCycles[best])
            best = i;
    return static_cast<SegClass>(best);
}

bool
BottleneckReport::operator==(const BottleneckReport &o) const
{
    for (unsigned i = 0; i < kNumSegClasses; i++)
        if (classCycles[i] != o.classCycles[i])
            return false;
    return valid == o.valid && cycles == o.cycles &&
           segments == o.segments && whatIfs == o.whatIfs &&
           units == o.units;
}

std::string
BottleneckReport::text() const
{
    std::string out = "== bottleneck report ==\n";
    if (!valid) {
        out += "  no completed root task; nothing to analyze\n";
        return out;
    }

    out += strfmt("critical path: %llu cycles == run cycles, "
                  "%zu segments\n",
                  (unsigned long long)cycles, segments.size());
    for (unsigned i = 0; i < kNumSegClasses; i++) {
        double pct =
            cycles ? 100.0 * (double)classCycles[i] / (double)cycles
                   : 0.0;
        out += strfmt("  %-18s %12llu cycles  %5.1f%%\n",
                      segClassName(static_cast<SegClass>(i)),
                      (unsigned long long)classCycles[i], pct);
    }
    out += strfmt("dominant bottleneck: %s\n",
                  segClassName(dominant()));

    out += "what-if bounds:\n";
    for (const WhatIf &w : whatIfs)
        out += strfmt("  %-32s => <= %.2fx  (%llu cycles)\n",
                      w.what.c_str(), w.bound,
                      (unsigned long long)w.zeroedCycles);

    out += "per-unit critical-path share:\n";
    out += strfmt("  %-12s %8s %8s %12s %12s %10s %9s\n", "unit",
                  "insts", "on-path", "crit-cycles", "queue-wait",
                  "mean-slack", "max-slack");
    for (const UnitPathStats &u : units)
        out += strfmt("  %-12s %8llu %8llu %12llu %12llu %10.1f "
                      "%9llu\n",
                      u.name.c_str(), (unsigned long long)u.instances,
                      (unsigned long long)u.critInstances,
                      (unsigned long long)u.critCycles,
                      (unsigned long long)u.critQueueWait, u.meanSlack,
                      (unsigned long long)u.maxSlack);
    return out;
}

Json
BottleneckReport::toJson() const
{
    Json doc = Json::object();
    doc.set("valid", Json::boolean(valid));
    doc.set("cycles", Json::num(cycles));

    Json cls = Json::object();
    for (unsigned i = 0; i < kNumSegClasses; i++)
        cls.set(segClassName(static_cast<SegClass>(i)),
                Json::num(classCycles[i]));
    doc.set("classes", std::move(cls));
    doc.set("dominant", Json::str(segClassName(dominant())));
    doc.set("segments", Json::num(uint64_t(segments.size())));

    Json wifs = Json::array();
    for (const WhatIf &w : whatIfs) {
        Json jw = Json::object();
        jw.set("what", Json::str(w.what));
        jw.set("key", Json::str(w.key));
        jw.set("zeroed_cycles", Json::num(w.zeroedCycles));
        jw.set("bound", Json::num(w.bound));
        wifs.push(std::move(jw));
    }
    doc.set("what_if", std::move(wifs));

    Json uns = Json::array();
    for (const UnitPathStats &u : units) {
        Json ju = Json::object();
        ju.set("unit", Json::str(u.name));
        ju.set("instances", Json::num(u.instances));
        ju.set("crit_instances", Json::num(u.critInstances));
        ju.set("crit_cycles", Json::num(u.critCycles));
        ju.set("crit_queue_wait", Json::num(u.critQueueWait));
        ju.set("mean_slack", Json::num(u.meanSlack));
        ju.set("max_slack", Json::num(u.maxSlack));
        uns.push(std::move(ju));
    }
    doc.set("units", std::move(uns));
    return doc;
}

void
BottleneckReport::appendTo(std::map<std::string, double> &out) const
{
    if (!valid)
        return;
    out["critpath.cycles"] = (double)cycles;
    for (unsigned i = 0; i < kNumSegClasses; i++)
        out[std::string("critpath.") +
            segClassName(static_cast<SegClass>(i))] =
            (double)classCycles[i];
    out["critpath.segments"] = (double)segments.size();
    out["critpath.dominant"] = (double)(unsigned)dominant();
    for (const WhatIf &w : whatIfs)
        out["critpath.bound." + w.key] = w.bound;
}

void
CriticalPathSink::configure(const std::vector<UnitInfo> &units)
{
    unitNames.clear();
    for (const UnitInfo &u : units)
        unitNames.push_back(u.name);
    insts.clear();
    live.clear();
    root = kNone;
}

void
CriticalPathSink::taskSpawn(uint64_t cycle, unsigned sid,
                            unsigned slot, unsigned parent_sid,
                            unsigned parent_slot)
{
    size_t idx = insts.size();
    Instance in;
    in.sid = sid;
    in.spawnCycle = cycle;
    if (parent_sid == ~0u) {
        in.parent = kNone;
        root = idx;
    } else {
        auto it = live.find({parent_sid, parent_slot});
        if (it != live.end()) {
            in.parent = it->second;
            insts[it->second].children.push_back(idx);
        }
    }
    insts.push_back(std::move(in));
    live[{sid, slot}] = idx; // slot generations: latest spawn wins
}

void
CriticalPathSink::taskDispatch(uint64_t cycle, unsigned sid,
                               unsigned slot, unsigned /*tile*/)
{
    auto it = live.find({sid, slot});
    if (it == live.end())
        return;
    Residency r;
    r.start = cycle;
    insts[it->second].res.push_back(r);
}

void
CriticalPathSink::residencyStalls(uint64_t /*cycle*/, unsigned sid,
                                  unsigned slot, uint64_t mem_stall,
                                  uint64_t spawn_stall)
{
    auto it = live.find({sid, slot});
    if (it == live.end())
        return;
    insts[it->second].pendMem = mem_stall;
    insts[it->second].pendSpawn = spawn_stall;
}

void
CriticalPathSink::closeResidency(Instance &in, uint64_t cycle)
{
    if (in.res.empty() || in.res.back().end != 0)
        return; // defensive: no open residency
    Residency &r = in.res.back();
    r.end = cycle + 1;
    r.mem = in.pendMem;
    r.spawn = in.pendSpawn;
    uint64_t span = r.end - r.start;
    if (r.mem + r.spawn > span) { // never expected; keep exact
        r.mem = std::min(r.mem, span);
        r.spawn = span - r.mem;
    }
    in.pendMem = 0;
    in.pendSpawn = 0;
}

void
CriticalPathSink::taskSuspend(uint64_t cycle, unsigned sid,
                              unsigned slot)
{
    auto it = live.find({sid, slot});
    if (it == live.end())
        return;
    closeResidency(insts[it->second], cycle);
}

void
CriticalPathSink::taskRetire(uint64_t cycle, unsigned sid,
                             unsigned slot)
{
    auto it = live.find({sid, slot});
    if (it == live.end())
        return;
    Instance &in = insts[it->second];
    closeResidency(in, cycle);
    in.retireCycle = cycle;
    in.retired = true;
    live.erase(it); // the slot can be recycled for a new instance
}

namespace {

/** Window of the run one instance must account for. */
struct CoverItem
{
    size_t inst;
    uint64_t w0;
    uint64_t w1;
};

} // namespace

BottleneckReport
CriticalPathSink::analyze() const
{
    BottleneckReport rep;
    if (root == kNone || !insts[root].retired)
        return rep; // empty-but-valid: no completed root task

    rep.valid = true;
    rep.cycles = insts[root].retireCycle + 1;

    // -- Walk the DAG backward from the final retire, partitioning
    //    [0, cycles) into attributed segments via a worklist (deep
    //    linear recursions would otherwise overflow the stack).
    std::vector<CritSegment> segs;
    std::vector<uint8_t> onPath(insts.size(), 0);

    auto emit = [&](uint64_t b, uint64_t e, SegClass c, size_t inst) {
        if (b >= e)
            return;
        segs.push_back({b, e, c, insts[inst].sid});
        onPath[inst] = 1;
    };

    std::vector<CoverItem> work;
    work.push_back({root, 0, rep.cycles});
    while (!work.empty()) {
        CoverItem it = work.back();
        work.pop_back();
        const Instance &in = insts[it.inst];
        uint64_t pos = it.w0;

        // Before the spawn was accepted, the spawn itself was being
        // re-presented (a fault-delayed host kick for the root; never
        // reached for children, whose windows start after they
        // spawned).
        if (pos < in.spawnCycle) {
            uint64_t e = std::min(in.spawnCycle, it.w1);
            emit(pos, e, SegClass::SpawnBackpressure, it.inst);
            pos = e;
        }

        for (size_t k = 0; k < in.res.size() && pos < it.w1; k++) {
            const Residency &r = in.res[k];
            if (r.end != 0 && r.end <= pos)
                continue; // residency wholly before the window

            // Gap before this residency: queue wait for the first
            // dispatch, or a suspend gap charged to the releasing
            // child (the last child retire inside the gap is the
            // join that re-readied this instance).
            if (pos < r.start) {
                uint64_t gapEnd = std::min(r.start, it.w1);
                size_t rel = kNone;
                if (k > 0) {
                    uint64_t lo = in.res[k - 1].end - 1;
                    for (size_t c : in.children) {
                        const Instance &ch = insts[c];
                        if (!ch.retired || ch.retireCycle < lo ||
                            ch.retireCycle >= r.start)
                            continue;
                        if (rel == kNone ||
                            ch.retireCycle >=
                                insts[rel].retireCycle)
                            rel = c;
                    }
                }
                if (rel != kNone &&
                    insts[rel].retireCycle + 1 > pos) {
                    uint64_t ce = std::min(
                        insts[rel].retireCycle + 1, gapEnd);
                    work.push_back({rel, pos, ce});
                    pos = ce;
                }
                emit(pos, gapEnd, SegClass::QueueWait, it.inst);
                pos = gapEnd;
            }

            // The residency itself: render the measured stall totals
            // as canonical [mem, spawn, compute] runs so clipping to
            // the window stays integer-exact.
            uint64_t rend = r.end ? r.end : it.w1; // open: clip
            rend = std::min(rend, it.w1);
            uint64_t runs[3][2] = {
                {r.start, r.start + r.mem},
                {r.start + r.mem, r.start + r.mem + r.spawn},
                {r.start + r.mem + r.spawn, r.end ? r.end : rend},
            };
            SegClass cls[3] = {SegClass::MemStall,
                               SegClass::SpawnBackpressure,
                               SegClass::Compute};
            for (int i = 0; i < 3; i++) {
                uint64_t b = std::max(runs[i][0], pos);
                uint64_t e = std::min(runs[i][1], rend);
                emit(b, e, cls[i], it.inst);
            }
            pos = std::max(pos, rend);
        }

        // Defensive remainder (a window should always be exactly
        // covered): ready but never re-dispatched.
        emit(pos, it.w1, SegClass::QueueWait, it.inst);
    }

    std::sort(segs.begin(), segs.end(),
              [](const CritSegment &a, const CritSegment &b) {
                  return a.begin < b.begin;
              });

    // Coalesce adjacent same-class same-unit spans.
    for (const CritSegment &s : segs) {
        if (!rep.segments.empty()) {
            CritSegment &p = rep.segments.back();
            if (p.end == s.begin && p.cls == s.cls &&
                p.sid == s.sid) {
                p.end = s.end;
                rep.classCycles[(unsigned)s.cls] += s.length();
                continue;
            }
        }
        rep.segments.push_back(s);
        rep.classCycles[(unsigned)s.cls] += s.length();
    }

    // -- Per-unit shares and slack.
    size_t nunits = unitNames.size();
    rep.units.resize(nunits);
    std::vector<uint64_t> unitCrit(nunits, 0), unitQw(nunits, 0);
    std::vector<uint64_t> slackSum(nunits, 0), slackN(nunits, 0);
    for (const CritSegment &s : rep.segments) {
        if (s.sid >= nunits)
            continue;
        unitCrit[s.sid] += s.length();
        if (s.cls == SegClass::QueueWait)
            unitQw[s.sid] += s.length();
    }
    for (size_t i = 0; i < insts.size(); i++) {
        const Instance &in = insts[i];
        if (!in.retired || in.sid >= nunits)
            continue;
        rep.units[in.sid].instances++;
        if (onPath[i])
            rep.units[in.sid].critInstances++;
        if (in.parent == kNone)
            continue; // root has no join to be late for

        // Slack: how much later could this child have retired
        // without delaying the join that actually released (or
        // contained) it? Suspend-gap windows of the parent first —
        // a retire on the suspend cycle itself releases the parent.
        const Instance &p = insts[in.parent];
        uint64_t slack = 0;
        bool found = false;
        for (size_t k = 1; k < p.res.size() && !found; k++) {
            uint64_t lo = p.res[k - 1].end - 1;
            uint64_t hi = p.res[k].start;
            if (in.retireCycle < lo || in.retireCycle >= hi)
                continue;
            uint64_t latest = in.retireCycle;
            for (size_t c : p.children) {
                const Instance &sib = insts[c];
                if (sib.retired && sib.retireCycle >= lo &&
                    sib.retireCycle < hi)
                    latest = std::max(latest, sib.retireCycle);
            }
            slack = latest - in.retireCycle;
            found = true;
        }
        if (!found) {
            for (const Residency &r : p.res) {
                if (r.end == 0 || in.retireCycle < r.start ||
                    in.retireCycle >= r.end)
                    continue;
                slack = (r.end - 1) - in.retireCycle;
                break;
            }
        }
        slackSum[in.sid] += slack;
        slackN[in.sid]++;
        rep.units[in.sid].maxSlack =
            std::max(rep.units[in.sid].maxSlack, slack);
    }
    for (size_t s = 0; s < nunits; s++) {
        UnitPathStats &u = rep.units[s];
        u.name = unitNames[s];
        u.critCycles = unitCrit[s];
        u.critQueueWait = unitQw[s];
        u.meanSlack = slackN[s]
                          ? (double)slackSum[s] / (double)slackN[s]
                          : 0.0;
    }

    // -- What-if bounds: re-walk the recorded path with a segment
    //    class (or a unit's queue-wait) zeroed. Bounds are >= 1 and
    //    monotone by construction: zeroing a superset of segments
    //    removes at least as many cycles.
    auto addWhatIf = [&](std::string what, std::string key,
                         uint64_t zeroed) {
        WhatIf w;
        w.what = std::move(what);
        w.key = std::move(key);
        w.zeroedCycles = zeroed;
        uint64_t rest =
            rep.cycles > zeroed ? rep.cycles - zeroed : 1;
        w.bound = (double)rep.cycles / (double)rest;
        rep.whatIfs.push_back(std::move(w));
    };
    addWhatIf("zero queue-wait", "queue_wait",
              rep.classOf(SegClass::QueueWait));
    addWhatIf("zero mem-stall", "mem_stall",
              rep.classOf(SegClass::MemStall));
    addWhatIf("zero spawn-backpressure", "spawn_backpressure",
              rep.classOf(SegClass::SpawnBackpressure));
    addWhatIf("zero all stalls", "all_stalls",
              rep.classOf(SegClass::QueueWait) +
                  rep.classOf(SegClass::MemStall) +
                  rep.classOf(SegClass::SpawnBackpressure));
    for (size_t s = 0; s < nunits; s++)
        if (unitQw[s])
            addWhatIf(
                strfmt("infinite tiles on unit '%s'",
                       unitNames[s].c_str()),
                strfmt("unit.%s.queue_wait", unitNames[s].c_str()),
                unitQw[s]);

    // The pinned invariant: the partition covers the run exactly.
    uint64_t sum = 0;
    for (unsigned i = 0; i < kNumSegClasses; i++)
        sum += rep.classCycles[i];
    if (sum != rep.cycles)
        tapas_fatal("critical-path attribution (%llu cycles) does "
                    "not cover the run (%llu cycles)",
                    (unsigned long long)sum,
                    (unsigned long long)rep.cycles);
    return rep;
}

} // namespace tapas::obs
