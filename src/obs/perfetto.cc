#include "obs/perfetto.hh"

#include <ostream>
#include <sstream>

#include "support/logging.hh"

namespace tapas::obs {

namespace {

/** Escape a string for embedding in a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

unsigned long long
ull(uint64_t v)
{
    return static_cast<unsigned long long>(v);
}

} // namespace

void
PerfettoTraceSink::configure(const std::vector<UnitInfo> &units)
{
    unitNames.clear();
    for (const UnitInfo &u : units)
        unitNames.push_back(u.name);

    for (unsigned sid = 0; sid < units.size(); ++sid) {
        unsigned pid = unitPid(sid);
        push(strfmt("{\"name\":\"process_name\",\"ph\":\"M\","
                    "\"pid\":%u,\"tid\":0,\"args\":{\"name\":"
                    "\"unit %s\"}}",
                    pid, jsonEscape(units[sid].name).c_str()));
        push(strfmt("{\"name\":\"thread_name\",\"ph\":\"M\","
                    "\"pid\":%u,\"tid\":0,\"args\":{\"name\":"
                    "\"queue\"}}",
                    pid));
        for (unsigned t = 0; t < units[sid].tiles; ++t) {
            push(strfmt("{\"name\":\"thread_name\",\"ph\":\"M\","
                        "\"pid\":%u,\"tid\":%u,\"args\":{\"name\":"
                        "\"tile %u\"}}",
                        pid, t + 1, t));
        }
    }
    push(strfmt("{\"name\":\"process_name\",\"ph\":\"M\","
                "\"pid\":%u,\"tid\":0,\"args\":{\"name\":"
                "\"memory\"}}",
                memoryPid()));
}

void
PerfettoTraceSink::taskSpawn(uint64_t cycle, unsigned sid,
                             unsigned slot, unsigned parent_sid,
                             unsigned parent_slot)
{
    openSpawn[Key{sid, slot}] = cycle;

    // Flow arrow from the parent's executing slice to the child's
    // first dispatch (the root instance has no parent).
    auto it = openExec.find(Key{parent_sid, parent_slot});
    if (parent_sid != ~0u && it != openExec.end()) {
        uint64_t id = nextFlowId++;
        push(strfmt("{\"name\":\"spawn\",\"cat\":\"spawn\","
                    "\"ph\":\"s\",\"id\":%llu,\"ts\":%llu,"
                    "\"pid\":%u,\"tid\":%u}",
                    ull(id), ull(cycle), unitPid(parent_sid),
                    it->second.tile + 1));
        pendingFlow[Key{sid, slot}] = id;
    }
}

void
PerfettoTraceSink::taskDispatch(uint64_t cycle, unsigned sid,
                                unsigned slot, unsigned tile)
{
    Key key{sid, slot};

    // Queue-residency slice: spawn -> first dispatch.
    auto sp = openSpawn.find(key);
    if (sp != openSpawn.end()) {
        push(strfmt("{\"name\":\"Spawn\",\"ph\":\"X\",\"ts\":%llu,"
                    "\"dur\":%llu,\"pid\":%u,\"tid\":0,"
                    "\"args\":{\"slot\":%u}}",
                    ull(sp->second), ull(cycle - sp->second),
                    unitPid(sid), slot));
        openSpawn.erase(sp);
    }

    auto fl = pendingFlow.find(key);
    if (fl != pendingFlow.end()) {
        push(strfmt("{\"name\":\"spawn\",\"cat\":\"spawn\","
                    "\"ph\":\"f\",\"bp\":\"e\",\"id\":%llu,"
                    "\"ts\":%llu,\"pid\":%u,\"tid\":%u}",
                    ull(fl->second), ull(cycle), unitPid(sid),
                    tile + 1));
        pendingFlow.erase(fl);
    }

    openExec[key] = OpenExec{cycle, tile};
}

void
PerfettoTraceSink::taskSuspend(uint64_t cycle, unsigned sid,
                               unsigned slot)
{
    auto it = openExec.find(Key{sid, slot});
    if (it == openExec.end())
        return;
    push(strfmt("{\"name\":\"Dispatch\",\"ph\":\"X\",\"ts\":%llu,"
                "\"dur\":%llu,\"pid\":%u,\"tid\":%u,"
                "\"args\":{\"slot\":%u}}",
                ull(it->second.since),
                ull(cycle - it->second.since), unitPid(sid),
                it->second.tile + 1, slot));
    openExec.erase(it);
}

void
PerfettoTraceSink::taskRetire(uint64_t cycle, unsigned sid,
                              unsigned slot)
{
    unsigned tid = 0;
    auto it = openExec.find(Key{sid, slot});
    if (it != openExec.end()) {
        tid = it->second.tile + 1;
        push(strfmt("{\"name\":\"Dispatch\",\"ph\":\"X\","
                    "\"ts\":%llu,\"dur\":%llu,\"pid\":%u,"
                    "\"tid\":%u,\"args\":{\"slot\":%u}}",
                    ull(it->second.since),
                    ull(cycle - it->second.since), unitPid(sid), tid,
                    slot));
        openExec.erase(it);
    }
    push(strfmt("{\"name\":\"Retire\",\"ph\":\"X\",\"ts\":%llu,"
                "\"dur\":1,\"pid\":%u,\"tid\":%u,"
                "\"args\":{\"slot\":%u}}",
                ull(cycle), unitPid(sid), tid, slot));
}

void
PerfettoTraceSink::spawnRejected(uint64_t /*cycle*/, unsigned sid,
                                 bool /*queue_full*/)
{
    // Individual rejects would dwarf the trace (they recur every
    // retry cycle); they surface as a cumulative counter at the next
    // queue sample instead.
    ++spawnRejectsTotal;
    ++spawnRejectsByUnit[sid];
}

void
PerfettoTraceSink::emitFaultInstant(uint64_t cycle,
                                    const char *prefix,
                                    const char *kind, unsigned sid)
{
    unsigned pid = sid == ~0u ? memoryPid() : unitPid(sid);
    push(strfmt("{\"name\":\"%s:%s\",\"cat\":\"fault\","
                "\"ph\":\"i\",\"s\":\"p\",\"ts\":%llu,"
                "\"pid\":%u,\"tid\":0}",
                prefix, jsonEscape(kind).c_str(), ull(cycle), pid));
}

void
PerfettoTraceSink::faultInjected(uint64_t cycle, const char *kind,
                                 unsigned sid)
{
    ++faultsTotal;
    emitFaultInstant(cycle, "fault", kind, sid);
}

void
PerfettoTraceSink::faultRecovered(uint64_t cycle, const char *kind,
                                  unsigned sid)
{
    ++recoveriesTotal;
    emitFaultInstant(cycle, "recover", kind, sid);
}

void
PerfettoTraceSink::runInterrupted(uint64_t cycle,
                                  const char *reason)
{
    // Global-scope instant: the whole run stopped here.
    push(strfmt("{\"name\":\"interrupted:%s\","
                "\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"g\","
                "\"ts\":%llu,\"pid\":%u,\"tid\":0}",
                jsonEscape(reason).c_str(), ull(cycle),
                memoryPid()));
}

void
PerfettoTraceSink::checkpointWritten(uint64_t cycle)
{
    push(strfmt("{\"name\":\"checkpoint\",\"cat\":\"lifecycle\","
                "\"ph\":\"i\",\"s\":\"g\",\"ts\":%llu,"
                "\"pid\":%u,\"tid\":0}",
                ull(cycle), memoryPid()));
}

void
PerfettoTraceSink::cacheMiss(uint64_t /*cycle*/)
{
    ++cacheMisses;
}

void
PerfettoTraceSink::cacheStall(uint64_t /*cycle*/, bool /*mshr_full*/)
{
    ++cacheStalls;
}

void
PerfettoTraceSink::emitCounter(uint64_t cycle, unsigned pid,
                               const std::string &track,
                               const std::string &key, uint64_t value)
{
    push(strfmt("{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%llu,"
                "\"pid\":%u,\"args\":{\"%s\":%llu}}",
                jsonEscape(track).c_str(), ull(cycle), pid,
                jsonEscape(key).c_str(), ull(value)));
}

void
PerfettoTraceSink::queueSample(uint64_t cycle, unsigned sid,
                               unsigned occupancy)
{
    emitCounter(cycle, unitPid(sid), "queue depth", "tasks",
                occupancy);
    emitCounter(cycle, unitPid(sid), "spawn rejects", "total",
                spawnRejectsByUnit[sid]);
}

void
PerfettoTraceSink::missSample(uint64_t cycle, unsigned outstanding)
{
    emitCounter(cycle, memoryPid(), "outstanding misses", "mshrs",
                outstanding);
    emitCounter(cycle, memoryPid(), "cache misses", "total",
                cacheMisses);
    emitCounter(cycle, memoryPid(), "cache stalls", "total",
                cacheStalls);
}

void
PerfettoTraceSink::addCriticalPathTrack(
    const std::vector<CritSegment> &segs)
{
    unsigned pid = memoryPid() + 1;
    push(strfmt("{\"name\":\"process_name\",\"ph\":\"M\","
                "\"pid\":%u,\"tid\":0,\"args\":{\"name\":"
                "\"critical path\"}}",
                pid));
    push(strfmt("{\"name\":\"thread_name\",\"ph\":\"M\","
                "\"pid\":%u,\"tid\":0,\"args\":{\"name\":"
                "\"bottleneck\"}}",
                pid));
    for (const CritSegment &s : segs) {
        const char *unit = s.sid < unitNames.size()
                               ? unitNames[s.sid].c_str()
                               : "?";
        push(strfmt("{\"name\":\"%s\",\"cat\":\"critpath\","
                    "\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
                    "\"pid\":%u,\"tid\":0,"
                    "\"args\":{\"unit\":\"%s\"}}",
                    segClassName(s.cls), ull(s.begin),
                    ull(s.length()), pid,
                    jsonEscape(unit).c_str()));
    }
}

void
PerfettoTraceSink::write(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    for (size_t i = 0; i < events.size(); ++i) {
        os << events[i];
        if (i + 1 < events.size())
            os << ',';
        os << '\n';
    }
    os << "]}\n";
}

std::string
PerfettoTraceSink::dump() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

} // namespace tapas::obs
