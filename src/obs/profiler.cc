#include "obs/profiler.hh"

#include <ostream>
#include <sstream>

#include "support/logging.hh"
#include "support/table.hh"

namespace tapas::obs {

const char *
bucketName(CycleBucket b)
{
    switch (b) {
      case CycleBucket::Busy: return "busy";
      case CycleBucket::StallMem: return "stall_mem";
      case CycleBucket::StallSpawn: return "stall_spawn";
      case CycleBucket::QueueFull: return "queue_full";
      case CycleBucket::Idle: return "idle";
    }
    tapas_panic("unknown cycle bucket");
}

void
CycleProfiler::configure(const std::vector<UnitInfo> &units)
{
    names.clear();
    for (const UnitInfo &u : units)
        names.push_back(u.name);
    counts.assign(names.size(), {});
}

uint64_t
CycleProfiler::totalOf(unsigned sid) const
{
    uint64_t n = 0;
    for (uint64_t c : counts.at(sid))
        n += c;
    return n;
}

uint64_t
CycleProfiler::total() const
{
    uint64_t n = 0;
    for (unsigned sid = 0; sid < counts.size(); ++sid)
        n += totalOf(sid);
    return n;
}

void
CycleProfiler::report(std::ostream &os) const
{
    TextTable t;
    t.header({"unit", "cycles", "busy", "stall_mem", "stall_spawn",
              "queue_full", "idle", "busy%"});
    for (unsigned sid = 0; sid < names.size(); ++sid) {
        uint64_t cycles = totalOf(sid);
        uint64_t busy = bucket(sid, CycleBucket::Busy);
        t.row({names[sid], std::to_string(cycles),
               std::to_string(busy),
               std::to_string(bucket(sid, CycleBucket::StallMem)),
               std::to_string(bucket(sid, CycleBucket::StallSpawn)),
               std::to_string(bucket(sid, CycleBucket::QueueFull)),
               std::to_string(bucket(sid, CycleBucket::Idle)),
               strfmt("%.1f%%",
                      cycles ? 100.0 * static_cast<double>(busy) /
                                   static_cast<double>(cycles)
                             : 0.0)});
    }
    t.print(os);
}

std::string
CycleProfiler::reportString() const
{
    std::ostringstream os;
    report(os);
    return os.str();
}

void
CycleProfiler::appendTo(std::map<std::string, double> &out) const
{
    for (unsigned sid = 0; sid < names.size(); ++sid) {
        const std::string base = "profile." + names[sid] + ".";
        out[base + "cycles"] = static_cast<double>(totalOf(sid));
        for (unsigned b = 0; b < kNumBuckets; ++b) {
            out[base + bucketName(static_cast<CycleBucket>(b))] =
                static_cast<double>(counts[sid][b]);
        }
    }
}

void
CycleProfiler::clear()
{
    counts.assign(names.size(), {});
}

} // namespace tapas::obs
