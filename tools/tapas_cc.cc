/**
 * @file
 * tapas-cc: command-line driver for the TAPAS toolchain.
 *
 * Compiles a parallel-IR program (.tir text, the format printed by
 * the IR printer) into an accelerator design, then any combination
 * of:
 *
 *   --report              task graph + FPGA resource estimates
 *   --emit-chisel <path>  generated Chisel ('-' for stdout)
 *   --emit-dot <path>     task graph as Graphviz
 *   --run [args...]       simulate; integer/float arguments,
 *                         @global resolves to the global's address
 *   --interp [args...]    run on the reference interpreter instead
 *   --tiles N             tiles per task unit (default 1)
 *   --ntasks N            task-queue entries (default 32)
 *   --opt                 run the optimization passes first
 *   --unroll N            unroll eligible serial loops by N
 *   --trace <path>        write a Chrome/Perfetto trace-event JSON
 *                         from --run (open in ui.perfetto.dev)
 *   --trace-csv <path>    write the task-lifetime CSV from --run
 *   --profile             per-unit cycle-attribution table from
 *                         --run (busy / stall / idle buckets)
 *   --explain             critical-path & bottleneck report from
 *                         --run (segment classes, what-if bounds)
 *   --jobs N              run --run/--interp engines concurrently
 *   --json <path>         machine-readable results ('-' for stdout)
 *   --top <name>          offloaded function (default: first
 *                         function containing a detach)
 *   --fault-rate R        inject faults at rate R (per cycle/event)
 *                         into --run; see sim/fault.hh
 *   --fault-seed S        fault-schedule seed (default 0x7a7a5)
 *   --max-retries N       per-task fault-retry budget (default 8)
 *   --dse [args...]       design-space exploration (exhaustive grid)
 *                         over tiles x ntasks on the Cyclone V;
 *                         prunes over-budget points, memoizes
 *                         compiles, reports the Pareto frontier
 *   --dse-tiles LIST      comma-separated tile counts (1,2,4,8)
 *   --dse-ntasks LIST     comma-separated queue sizes (--ntasks)
 *
 * Run lifecycle (see DESIGN.md, "Run lifecycle"):
 *   --deadline SEC        wall-clock budget for --run; on expiry the
 *                         simulation stops at a cycle boundary,
 *                         writes a snapshot (with --checkpoint) and
 *                         exits 6
 *   --deadline-cycles N   deterministic simulated-cycle deadline
 *   --checkpoint PATH     where to write the resume snapshot when a
 *                         run is interrupted
 *   --checkpoint-every N  additionally snapshot every N cycles while
 *                         the run is going
 *   --resume PATH         continue an interrupted run from its
 *                         snapshot (no input file needed); the
 *                         completed run is byte-identical to one
 *                         that was never interrupted
 *   --dse-journal PATH    journal completed DSE evaluations (JSONL)
 *   --dse-resume PATH     resume a DSE exploration from its journal
 *   --dse-deadline SEC    wall-clock budget for --dse, apportioned
 *                         across rungs
 *   SIGINT (Ctrl-C) requests cooperative cancellation everywhere:
 *   partial results are flushed and the exit code is 6; a second
 *   SIGINT hard-exits (130).
 *
 * Exit codes: 0 success, 1 toolchain error, 2 usage, 3 --run/--interp
 * return-value mismatch, 4 simulation failed (deadlock / cycle
 * limit / spawn failed), 5 fault-retry budget exhausted,
 * 6 interrupted (deadline or SIGINT; partial results flushed).
 *
 * Example:
 *   tapas-cc examples/vector_scale.tir --report \
 *            --run @vec 64 --emit-chisel -
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "codegen/chisel.hh"
#include "driver/engine.hh"
#include "driver/jobrunner.hh"
#include "driver/snapshot.hh"
#include "dse/dse.hh"
#include "fpga/model.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "support/atomic_file.hh"
#include "support/cancel.hh"
#include "support/json.hh"
#include "support/manifest.hh"

using namespace tapas;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " <program.tir> [--top NAME] [--tiles N] [--ntasks N]\n"
           "       [--opt] [--unroll N] [--report]\n"
           "       [--emit-chisel PATH] [--emit-dot PATH]\n"
           "       [--run ARGS...] [--interp ARGS...] "
           "[--trace PATH]\n"
           "       [--trace-csv PATH] [--profile] [--jobs N] "
           "[--json PATH]\n"
           "\n"
           "  --report            task graph + FPGA resource "
           "estimates\n"
           "  --emit-chisel PATH  generated Chisel ('-' for "
           "stdout)\n"
           "  --emit-dot PATH     task graph as Graphviz\n"
           "  --run [ARGS...]     cycle simulation; @global "
           "resolves to its address\n"
           "  --interp [ARGS...]  reference interpreter (same "
           "argument list)\n"
           "  --tiles N           tiles per task unit (default 1)\n"
           "  --ntasks N          task-queue entries (default 32)\n"
           "  --opt               run the optimization passes "
           "before HLS\n"
           "  --unroll N          unroll eligible serial loops by "
           "N\n"
           "  --trace PATH        Perfetto trace-event JSON from "
           "--run ('-' for stdout;\n"
           "                      open in ui.perfetto.dev)\n"
           "  --trace-csv PATH    task-lifetime CSV from --run\n"
           "  --profile           per-unit cycle-attribution table "
           "from --run\n"
           "  --explain           critical-path bottleneck report "
           "from --run\n"
           "  --jobs N            worker threads for --run/--interp "
           "(or $TAPAS_JOBS)\n"
           "  --json PATH         machine-readable results ('-' for "
           "stdout)\n"
           "  --top NAME          offloaded function (default: "
           "first with a detach)\n"
           "  --fault-rate R      inject faults at rate R into "
           "--run (0 disables)\n"
           "  --fault-seed S      fault-schedule seed (default "
           "0x7a7a5)\n"
           "  --max-retries N     per-task fault-retry budget "
           "(default 8)\n"
           "  --scheduler S       cycle-loop policy for --run: "
           "event (default) or\n"
           "                      scan (legacy reference loop); "
           "results are byte-identical\n"
           "  --dse [ARGS...]     explore tiles x ntasks (exhaustive "
           "grid, Cyclone V);\n"
           "                      reports the cycles/ALMs/power "
           "Pareto frontier\n"
           "  --dse-tiles LIST    tile counts to explore (default "
           "1,2,4,8)\n"
           "  --dse-ntasks LIST   queue sizes to explore (default: "
           "--ntasks)\n"
           "  --deadline SEC      wall-clock budget for --run "
           "(interrupt + exit 6)\n"
           "  --deadline-cycles N deterministic simulated-cycle "
           "deadline for --run\n"
           "  --checkpoint PATH   resume snapshot for interrupted "
           "runs\n"
           "  --checkpoint-every N  also snapshot every N simulated "
           "cycles\n"
           "  --resume PATH       continue an interrupted --run from "
           "its snapshot\n"
           "  --dse-journal PATH  journal completed --dse "
           "evaluations (JSONL)\n"
           "  --dse-resume PATH   resume --dse from its journal\n"
           "  --dse-deadline SEC  wall-clock budget for --dse\n"
           "\n"
           "exit codes: 0 ok, 1 error, 2 usage, 3 run/interp "
           "mismatch,\n"
           "            4 simulation failure, 5 fault budget "
           "exhausted,\n"
           "            6 interrupted (deadline or SIGINT)\n";
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        tapas_fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Parse a decimal flag argument; fatal() on garbage. */
unsigned
parseUnsigned(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        tapas_fatal("%s expects a number, got '%s'", flag.c_str(),
                    text.c_str());
    return static_cast<unsigned>(v);
}

/** Parse a comma-separated list of decimal values ("1,2,4"). */
std::vector<unsigned>
parseUnsignedList(const std::string &flag, const std::string &text)
{
    std::vector<unsigned> values;
    std::string item;
    std::istringstream ss(text);
    while (std::getline(ss, item, ','))
        values.push_back(parseUnsigned(flag, item));
    if (values.empty())
        tapas_fatal("%s expects a comma-separated list, got '%s'",
                    flag.c_str(), text.c_str());
    return values;
}

/** Parse a 64-bit flag argument (cycle counts); fatal() on garbage. */
uint64_t
parseUint64(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0')
        tapas_fatal("%s expects a number, got '%s'", flag.c_str(),
                    text.c_str());
    return v;
}

/** Parse a (possibly scientific-notation) rate argument. */
double
parseDouble(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v < 0)
        tapas_fatal("%s expects a non-negative number, got '%s'",
                    flag.c_str(), text.c_str());
    return v;
}

/** Parse one CLI run-argument against the function's signature. */
ir::RtValue
parseArg(const std::string &text, ir::Type type,
         const ir::Module &mod, ir::MemImage &mem)
{
    if (!text.empty() && text[0] == '@') {
        const ir::GlobalVar *g = mod.globalByName(text.substr(1));
        if (!g)
            tapas_fatal("unknown global '%s'", text.c_str());
        return ir::RtValue::fromPtr(mem.addressOf(g));
    }
    if (type.isFloat())
        return ir::RtValue::fromFloat(std::stod(text));
    return ir::RtValue::fromInt(std::stoll(text, nullptr, 0));
}

void
writeOut(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::cout << content;
        return;
    }
    // Atomic (temp + rename): an interrupt or crash mid-write can
    // never leave a torn artifact behind.
    atomicWriteFile(path, content);
    std::cout << "wrote " << path << " (" << content.size()
              << " bytes)\n";
}

std::string
formatRet(const ir::Function &top, ir::RtValue ret)
{
    return top.returnType().isFloat()
               ? strfmt("%g", ret.f)
               : strfmt("%lld", static_cast<long long>(ret.i));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);

    // The input file is optional when the module comes from a
    // snapshot (--resume), so a leading flag is legal.
    std::string input;
    int first_flag = 1;
    if (argv[1][0] != '-') {
        input = argv[1];
        first_flag = 2;
    }
    std::string top_name;
    std::string chisel_path;
    std::string dot_path;
    std::string json_path;
    bool report = false;
    bool do_run = false;
    bool do_interp = false;
    bool do_opt = false;
    unsigned unroll = 0;
    unsigned tiles = 1;
    unsigned ntasks = 32;
    unsigned cli_jobs = 0;
    std::string trace_path;
    std::string trace_csv_path;
    bool do_profile = false;
    bool do_explain = false;
    bool fault_given = false;
    double fault_rate = 0;
    uint64_t fault_seed = 0x7a7a5u;
    unsigned max_retries = 8;
    bool do_dse = false;
    std::vector<unsigned> dse_tiles{1, 2, 4, 8};
    std::vector<unsigned> dse_ntasks;
    std::vector<std::string> run_args;
    double deadline_sec = 0;
    uint64_t deadline_cycles = 0;
    std::string checkpoint_path;
    uint64_t checkpoint_every = 0;
    std::string resume_path;
    std::string dse_journal_path;
    bool dse_resume = false;
    double dse_deadline_sec = 0;
    sim::Scheduler scheduler = sim::Scheduler::Event;

    for (int i = first_flag; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                tapas_fatal("flag '%s' needs an argument",
                            a.c_str());
            return argv[i];
        };
        if (a == "--top") {
            top_name = next();
        } else if (a == "--tiles") {
            tiles = parseUnsigned(a, next());
        } else if (a == "--ntasks") {
            ntasks = parseUnsigned(a, next());
        } else if (a == "--report") {
            report = true;
        } else if (a == "--opt") {
            do_opt = true;
        } else if (a == "--unroll") {
            unroll = parseUnsigned(a, next());
        } else if (a == "--trace" || a == "--trace-csv") {
            // A following flag is a forgotten path, not an argument.
            std::string path = next();
            if (path.size() >= 2 && path.compare(0, 2, "--") == 0) {
                tapas_fatal("%s expects an output path, got the "
                            "flag '%s'", a.c_str(), path.c_str());
            }
            (a == "--trace" ? trace_path : trace_csv_path) = path;
        } else if (a == "--profile") {
            do_profile = true;
        } else if (a == "--explain") {
            do_explain = true;
        } else if (a == "--jobs") {
            cli_jobs = parseUnsigned(a, next());
        } else if (a == "--fault-rate") {
            fault_rate = parseDouble(a, next());
            fault_given = true;
        } else if (a == "--fault-seed") {
            fault_seed = std::strtoull(next().c_str(), nullptr, 0);
            fault_given = true;
        } else if (a == "--max-retries") {
            max_retries = parseUnsigned(a, next());
            fault_given = true;
        } else if (a == "--scheduler") {
            std::string s = next();
            if (s == "scan") {
                scheduler = sim::Scheduler::Scan;
            } else if (s == "event") {
                scheduler = sim::Scheduler::Event;
            } else {
                tapas_fatal("--scheduler expects scan or event, "
                            "got '%s'", s.c_str());
            }
        } else if (a == "--json") {
            json_path = next();
        } else if (a == "--emit-chisel") {
            chisel_path = next();
        } else if (a == "--emit-dot") {
            dot_path = next();
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
        } else if (a == "--dse-tiles") {
            dse_tiles = parseUnsignedList(a, next());
        } else if (a == "--dse-ntasks") {
            dse_ntasks = parseUnsignedList(a, next());
        } else if (a == "--deadline") {
            deadline_sec = parseDouble(a, next());
        } else if (a == "--deadline-cycles") {
            deadline_cycles = parseUint64(a, next());
        } else if (a == "--checkpoint") {
            checkpoint_path = next();
        } else if (a == "--checkpoint-every") {
            checkpoint_every = parseUint64(a, next());
        } else if (a == "--resume") {
            resume_path = next();
        } else if (a == "--dse-journal") {
            dse_journal_path = next();
        } else if (a == "--dse-resume") {
            dse_journal_path = next();
            dse_resume = true;
        } else if (a == "--dse-deadline") {
            dse_deadline_sec = parseDouble(a, next());
        } else if (a == "--run" || a == "--interp" || a == "--dse") {
            // All engines share one argument list; later flags may
            // omit it.
            if (a == "--dse")
                do_dse = true;
            else
                (a == "--run" ? do_run : do_interp) = true;
            std::vector<std::string> these;
            while (i + 1 < argc && argv[i + 1][0] != '-')
                these.push_back(argv[++i]);
            if (!these.empty())
                run_args = std::move(these);
        } else {
            tapas_fatal("unknown flag '%s' (see --help)", a.c_str());
        }
    }

    // First Ctrl-C requests cooperative cancellation; the run drains,
    // flushes partial artifacts, and exits kExitInterrupted.
    installSigintHandler();

    // Fault schedule, resolved once: flags (uniform rate + seed) or
    // the exact config an interrupted run snapshotted.
    std::optional<sim::FaultConfig> fault_cfg;
    if (fault_given) {
        sim::FaultConfig fc =
            sim::FaultConfig::uniform(fault_rate, fault_seed);
        fc.maxTaskRetries = max_retries;
        fault_cfg = fc;
    }

    driver::Snapshot snap;
    const bool resuming = !resume_path.empty();
    if (resuming) {
        // The snapshot is the authoritative replay recipe: it
        // overrides the module source and every knob that shaped the
        // interrupted run, and it implies --run.
        snap = driver::readSnapshot(resume_path);
        input = snap.inputName;
        top_name = snap.top;
        run_args = snap.runArgs;
        tiles = snap.tiles;
        ntasks = snap.ntasks;
        do_opt = snap.optPasses;
        unroll = snap.unrollFactor;
        fault_cfg = snap.fault;
        do_run = true;
        std::cout << "resume: replaying " << input << " from "
                  << resume_path << " (interrupted at cycle "
                  << snap.interruptCycle << ")\n";
    } else if (input.empty()) {
        usage(argv[0]);
    }

    auto mod = ir::parseModuleOrDie(
        resuming ? snap.moduleText : readFile(input));
    ir::verifyOrDie(*mod);

    ir::Function *top = nullptr;
    if (!top_name.empty()) {
        top = mod->functionByName(top_name);
        if (!top)
            tapas_fatal("no function '@%s'", top_name.c_str());
    } else {
        for (const auto &f : mod->functions()) {
            if (f->hasDetach()) {
                top = f.get();
                break;
            }
        }
        if (!top && !mod->functions().empty())
            top = mod->functions().front().get();
        if (!top)
            tapas_fatal("module has no functions");
    }

    hls::CompileOptions copts;
    copts.params.defaults.ntiles = tiles;
    copts.params.defaults.ntasks = ntasks;
    copts.runOptPasses = do_opt;
    copts.unrollFactor = unroll;
    hls::OptStats opt_stats;
    unsigned unrolled_loops = 0;
    copts.optStatsOut = &opt_stats;
    copts.unrolledLoopsOut = &unrolled_loops;
    // Compile once into an owning design (the pre-passes run on the
    // design's private clone; the parsed module stays pristine, so
    // --interp exercises the program exactly as written).
    driver::CompiledDesign cd = driver::compileDesign(
        *mod, top->name(), copts, fpga::Device::cycloneV());
    const hls::AcceleratorDesign &design = cd.get();

    if (do_opt) {
        std::cout << "opt: folded " << opt_stats.foldedConstants
                  << ", simplified " << opt_stats.simplifiedBranches
                  << " branches, removed " << opt_stats.removedBlocks
                  << " blocks / " << opt_stats.removedInstructions
                  << " insts\n";
    }
    if (unroll >= 2) {
        std::cout << "unroll: " << unrolled_loops << " loops by "
                  << unroll << "x\n";
    }

    if (report) {
        std::cout << "top: @" << top->name() << "\n\ntask graph:\n";
        for (const auto &t : design.taskGraph->tasks()) {
            std::cout << "  T" << t->sid() << "  " << t->name()
                      << "  (" << t->numInstructions() << " insts, "
                      << t->numMemOps() << " mem, "
                      << t->args().size() << " args"
                      << (t->isRecursive() ? ", recursive" : "")
                      << ")\n";
        }
        for (const fpga::Device &dev :
             {fpga::Device::cycloneV(), fpga::Device::arria10()}) {
            fpga::ResourceReport r =
                fpga::estimateResources(design, dev);
            std::cout << "\n" << dev.name << ": " << r.alms
                      << " ALMs, " << r.regs << " regs, " << r.brams
                      << " M20K, " << strfmt("%.0f", r.fmaxMhz)
                      << " MHz, " << strfmt("%.2f", r.powerW)
                      << " W (" << strfmt("%.0f%%",
                                          r.utilization * 100)
                      << " of chip)\n";
        }
    }

    if (!chisel_path.empty())
        writeOut(chisel_path, codegen::chiselString(design));

    if (!dot_path.empty()) {
        std::ostringstream os;
        codegen::emitTaskGraphDot(*design.taskGraph, os);
        writeOut(dot_path, os.str());
    }

    int exit_code = 0;

    Json doc = Json::object();
    doc.set("tool", Json::str("tapas_cc"));
    doc.set("input", Json::str(input));
    doc.set("top", Json::str(top->name()));
    // Where these results came from: argv, jobs, build info. Varies
    // across hosts and invocations (a resumed run's argv differs from
    // the uninterrupted one's) — byte-comparing diffs must strip it,
    // like compile_timings (tools/strip_volatile.py).
    doc.set("manifest", runManifest("tapas_cc", argc, argv,
                                    driver::resolveJobs(cli_jobs)));
    // Host wall-clock phase timings of the one compile above. These
    // vary run to run by nature — determinism checks must diff the
    // simulation payloads, never this block.
    {
        Json jt = Json::object();
        jt.set("parse_sec", Json::num(cd.timings.parseSec));
        jt.set("opt_sec", Json::num(cd.timings.optSec));
        jt.set("unroll_sec", Json::num(cd.timings.unrollSec));
        jt.set("codegen_sec", Json::num(cd.timings.codegenSec));
        jt.set("lower_sec", Json::num(cd.timings.lowerSec));
        jt.set("total_sec", Json::num(cd.timings.totalSec));
        doc.set("compile_timings", std::move(jt));
    }
    Json jresults = Json::array();

    if (do_run || do_interp) {
        if (run_args.size() != top->numArgs()) {
            tapas_fatal("@%s takes %u arguments, %zu given",
                        top->name().c_str(), top->numArgs(),
                        run_args.size());
        }

        // Each engine gets its own MemImage; the deterministic
        // layout makes @global addresses identical across images.
        auto setupMem = [&](ir::MemImage &mem) {
            mem.layout(*mod);
            std::vector<ir::RtValue> args;
            for (unsigned i = 0; i < top->numArgs(); ++i) {
                args.push_back(parseArg(run_args[i],
                                        top->arg(i)->type(), *mod,
                                        mem));
            }
            return args;
        };

        // Rebuildable replay recipe for checkpoint/interrupt
        // snapshots; `cycle` is the boundary the run stopped at.
        auto buildSnapshot = [&](uint64_t cycle) {
            driver::Snapshot s;
            s.inputName = input;
            s.moduleText = ir::toString(*mod);
            s.top = top->name();
            s.runArgs = run_args;
            s.tiles = tiles;
            s.ntasks = ntasks;
            s.optPasses = do_opt;
            s.unrollFactor = unroll;
            s.fault = fault_cfg;
            s.interruptCycle = cycle;
            return s;
        };

        sim::TaskTracer tracer;
        driver::Sweep<driver::RunResult> sweep(
            driver::resolveJobs(cli_jobs));
        if (do_interp) {
            sweep.add([&] {
                ir::MemImage mem(256ull << 20);
                auto args = setupMem(mem);
                driver::InterpEngine eng;
                return eng.run(*mod, *top, args, mem);
            });
        }
        if (do_run) {
            sweep.add([&] {
                ir::MemImage mem(256ull << 20);
                auto args = setupMem(mem);
                driver::AccelSimEngine::Options eo;
                eo.design = cd;
                eo.scheduler = scheduler;
                if (!trace_csv_path.empty())
                    eo.tracer = &tracer;
                if (fault_cfg)
                    eo.fault = *fault_cfg;
                driver::AccelSimEngine eng(std::move(eo));
                driver::RunOptions ro;
                ro.traceFile = trace_path;
                ro.profile = do_profile;
                ro.explain = do_explain;
                ro.cancel = &processCancelToken();
                ro.deadlineSeconds = deadline_sec;
                ro.deadlineCycles = deadline_cycles;
                if (!checkpoint_path.empty() && checkpoint_every) {
                    ro.checkpointEveryCycles = checkpoint_every;
                    ro.onCheckpoint = [&](uint64_t cyc) {
                        driver::writeSnapshot(checkpoint_path,
                                              buildSnapshot(cyc));
                    };
                }
                return eng.run(*mod, *top, args, mem, ro);
            });
        }
        std::vector<driver::RunResult> results = sweep.run();

        size_t idx = 0;
        std::optional<ir::RtValue> interp_ret;
        if (do_interp) {
            const driver::RunResult &r = results[idx++];
            std::cout << "interp: "
                      << static_cast<uint64_t>(
                             r.stat("total_insts"))
                      << " insts, " << r.spawns << " spawns";
            if (!top->returnType().isVoid()) {
                std::cout << ", returned " << formatRet(*top,
                                                        r.retval);
                interp_ret = r.retval;
            }
            std::cout << "\n";

            Json jr = Json::object();
            jr.set("engine", Json::str("interp"));
            jr.set("total_insts", Json::num(r.stat("total_insts")));
            jr.set("spawns", Json::num(r.spawns));
            if (!top->returnType().isVoid())
                jr.set("retval", Json::str(formatRet(*top,
                                                     r.retval)));
            jresults.push(std::move(jr));
        }
        if (do_run) {
            const driver::RunResult &r = results[idx++];
            if (!trace_path.empty() && trace_path != "-") {
                std::cout << "wrote " << trace_path
                          << " (perfetto trace)\n";
            }
            if (!trace_csv_path.empty()) {
                std::ostringstream os;
                tracer.dumpCsv(os);
                writeOut(trace_csv_path, os.str());
            }
            if (r.interrupted) {
                std::cout << "accel: interrupted at cycle "
                          << r.interruptCycle << " ("
                          << r.failure->detail << ")\n";
                if (!checkpoint_path.empty()) {
                    driver::writeSnapshot(
                        checkpoint_path,
                        buildSnapshot(r.interruptCycle));
                    std::cout << "snapshot: wrote " << checkpoint_path
                              << "; continue with --resume "
                              << checkpoint_path << "\n";
                }
                exit_code = kExitInterrupted;
            } else if (!r.ok()) {
                std::cout << "accel: FAILED ("
                          << r.failure->kind << ") after "
                          << r.cycles << " cycles\n"
                          << r.failure->detail << "\n";
                exit_code =
                    r.failure->kind == "fault_budget" ? 5 : 4;
            } else {
                std::cout << "accel: " << r.cycles << " cycles, "
                          << r.spawns << " spawns, "
                          << strfmt("%.1f%%", r.cacheHitRate * 100)
                          << " cache hits";
                if (!top->returnType().isVoid()) {
                    std::cout << ", returned "
                              << formatRet(*top, r.retval);
                }
                std::cout << "\n";
            }
            const bool fault_active =
                fault_cfg && (fault_cfg->spawnDropRate > 0 ||
                              fault_cfg->queueCorruptRate > 0 ||
                              fault_cfg->memDropRate > 0 ||
                              fault_cfg->memDelayRate > 0 ||
                              fault_cfg->tileStuckRate > 0);
            if (fault_active && !r.interrupted) {
                std::cout << "fault: injected="
                          << static_cast<uint64_t>(
                                 r.statOr("fault.spawn_drops", 0) +
                                 r.statOr("fault.queue_corruptions",
                                          0) +
                                 r.statOr("fault.mem_drops", 0) +
                                 r.statOr("fault.mem_delays", 0) +
                                 r.statOr("fault.tile_stalls", 0))
                          << " recovered="
                          << static_cast<uint64_t>(
                                 r.statOr("fault.spawn_retries", 0) +
                                 r.statOr("fault.task_replays", 0) +
                                 r.statOr("fault.mem_reissues", 0))
                          << "\n";
            }
            if (r.ok() && interp_ret &&
                interp_ret->i != r.retval.i) {
                std::cout << "MISMATCH: interp returned "
                          << formatRet(*top, *interp_ret)
                          << ", accel returned "
                          << formatRet(*top, r.retval) << "\n";
                exit_code = 3;
            }
            if (do_profile)
                std::cout << "\n" << r.profileReport;
            if (do_explain)
                std::cout << "\n" << r.bottleneckReport;

            Json jr = Json::object();
            jr.set("engine", Json::str("accel"));
            jr.set("cycles", Json::num(r.cycles));
            jr.set("spawns", Json::num(r.spawns));
            jr.set("cache_hit_rate", Json::num(r.cacheHitRate));
            jr.set("seconds", Json::num(r.seconds));
            if (!r.ok()) {
                Json jf = Json::object();
                jf.set("kind", Json::str(r.failure->kind));
                jf.set("detail", Json::str(r.failure->detail));
                jr.set("failure", std::move(jf));
            }
            if (r.ok() && !top->returnType().isVoid())
                jr.set("retval", Json::str(formatRet(*top,
                                                     r.retval)));
            if (do_explain && r.bottleneck)
                jr.set("bottleneck", r.bottleneck->toJson());
            // Full flattened stats (includes the "profile.*" cycle
            // buckets when --profile is on).
            Json jstats = Json::object();
            for (const auto &kv : r.stats)
                jstats.set(kv.first, Json::num(kv.second));
            jr.set("stats", std::move(jstats));
            jresults.push(std::move(jr));
        }
    }

    if (do_dse) {
        if (run_args.size() != top->numArgs()) {
            tapas_fatal("--dse: @%s takes %u arguments, %zu given",
                        top->name().c_str(), top->numArgs(),
                        run_args.size());
        }

        // The explorer wraps the CLI program as a workload: each
        // candidate re-parses the canonical module text (candidates
        // run concurrently and pre-passes mutate their input), lays
        // the image out, and binds the CLI argument list. There is no
        // golden model for an arbitrary .tir file, so verify accepts
        // any completed run.
        const std::string mtext = ir::toString(*mod);
        const std::string top_name = top->name();
        const std::vector<std::string> cli_args = run_args;
        dse::WorkloadFactory factory = [&](unsigned) {
            workloads::Workload w;
            w.name = input;
            w.module = ir::parseModuleOrDie(mtext);
            w.top = w.module->functionByName(top_name);
            ir::Module *m = w.module.get();
            ir::Function *t = w.top;
            w.setup = [m, t,
                       cli_args](ir::MemImage &mem) {
                mem.layout(*m);
                std::vector<ir::RtValue> args;
                for (unsigned i = 0; i < t->numArgs(); ++i) {
                    args.push_back(parseArg(cli_args[i],
                                            t->arg(i)->type(), *m,
                                            mem));
                }
                return args;
            };
            w.verify = [](const ir::MemImage &, ir::RtValue) {
                return std::string();
            };
            return w;
        };

        dse::ParamSpace space;
        space.tiles = dse_tiles;
        space.ntasks =
            dse_ntasks.empty() ? std::vector<unsigned>{ntasks}
                               : dse_ntasks;
        space.optPasses = {do_opt};
        space.unrollFactors = {unroll};

        dse::ExploreOptions xopts;
        xopts.device = fpga::Device::cycloneV();
        xopts.jobs = driver::resolveJobs(cli_jobs);
        xopts.strategy = dse::Strategy::ExhaustiveGrid;
        xopts.rungs = 1;
        xopts.cancel = &processCancelToken();
        xopts.deadlineSeconds = dse_deadline_sec;
        xopts.journalPath = dse_journal_path;
        xopts.resume = dse_resume;

        std::cout << "dse: exploring " << space.size()
                  << " configurations of @" << top_name << " on "
                  << xopts.device.name << "\n\n";
        dse::ExploreResult xr =
            dse::explore(factory, space, xopts);
        dse::printReport(xr, std::cout);
        doc.set("dse", dse::toJson(xr));
        if (xr.partial && exit_code == 0)
            exit_code = kExitInterrupted;
    }

    if (!json_path.empty()) {
        doc.set("results", std::move(jresults));
        writeOut(json_path, doc.dump());
    }
    return exit_code;
}
