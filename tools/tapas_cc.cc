/**
 * @file
 * tapas-cc: command-line driver for the TAPAS toolchain.
 *
 * Compiles a parallel-IR program (.tir text, the format printed by
 * the IR printer) into an accelerator design, then any combination
 * of:
 *
 *   --report              task graph + FPGA resource estimates
 *   --emit-chisel <path>  generated Chisel ('-' for stdout)
 *   --emit-dot <path>     task graph as Graphviz
 *   --run [args...]       simulate; integer/float arguments,
 *                         @global resolves to the global's address
 *   --interp [args...]    run on the reference interpreter instead
 *   --tiles N             tiles per task unit (default 1)
 *   --ntasks N            task-queue entries (default 32)
 *   --opt                 run the optimization passes first
 *   --unroll N            unroll eligible serial loops by N
 *   --trace <path>        write a task-lifetime CSV from --run
 *   --top <name>          offloaded function (default: first
 *                         function containing a detach)
 *
 * Example:
 *   tapas-cc examples/vector_scale.tir --report \
 *            --run @vec 64 --emit-chisel -
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "codegen/chisel.hh"
#include "fpga/model.hh"
#include "hls/opt.hh"
#include "hls/unroll.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "sim/accel.hh"

using namespace tapas;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " <program.tir> [--top NAME] [--tiles N] "
                 "[--ntasks N]\n"
                 "       [--report] [--emit-chisel PATH] "
                 "[--emit-dot PATH]\n"
                 "       [--run ARGS...] [--interp ARGS...]\n";
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        tapas_fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Parse one CLI run-argument against the function's signature. */
ir::RtValue
parseArg(const std::string &text, ir::Type type,
         const ir::Module &mod, ir::MemImage &mem)
{
    if (!text.empty() && text[0] == '@') {
        const ir::GlobalVar *g = mod.globalByName(text.substr(1));
        if (!g)
            tapas_fatal("unknown global '%s'", text.c_str());
        return ir::RtValue::fromPtr(mem.addressOf(g));
    }
    if (type.isFloat())
        return ir::RtValue::fromFloat(std::stod(text));
    return ir::RtValue::fromInt(std::stoll(text, nullptr, 0));
}

void
writeOut(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::cout << content;
        return;
    }
    std::ofstream out(path);
    if (!out)
        tapas_fatal("cannot write '%s'", path.c_str());
    out << content;
    std::cout << "wrote " << path << " (" << content.size()
              << " bytes)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);

    std::string input = argv[1];
    std::string top_name;
    std::string chisel_path;
    std::string dot_path;
    bool report = false;
    bool do_run = false;
    bool do_interp = false;
    bool do_opt = false;
    unsigned unroll = 0;
    unsigned tiles = 1;
    unsigned ntasks = 32;
    std::string trace_path;
    std::vector<std::string> run_args;

    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(argv[0]);
            return argv[i];
        };
        if (a == "--top") {
            top_name = next();
        } else if (a == "--tiles") {
            tiles = static_cast<unsigned>(std::stoul(next()));
        } else if (a == "--ntasks") {
            ntasks = static_cast<unsigned>(std::stoul(next()));
        } else if (a == "--report") {
            report = true;
        } else if (a == "--opt") {
            do_opt = true;
        } else if (a == "--unroll") {
            unroll = static_cast<unsigned>(std::stoul(next()));
        } else if (a == "--trace") {
            trace_path = next();
        } else if (a == "--emit-chisel") {
            chisel_path = next();
        } else if (a == "--emit-dot") {
            dot_path = next();
        } else if (a == "--run" || a == "--interp") {
            // Both engines share one argument list; the second flag
            // may omit it.
            (a == "--run" ? do_run : do_interp) = true;
            std::vector<std::string> these;
            while (i + 1 < argc && argv[i + 1][0] != '-')
                these.push_back(argv[++i]);
            if (!these.empty())
                run_args = std::move(these);
        } else {
            usage(argv[0]);
        }
    }

    auto mod = ir::parseModuleOrDie(readFile(input));
    ir::verifyOrDie(*mod);

    if (do_opt) {
        hls::OptStats os = hls::optimizeModule(*mod);
        std::cout << "opt: folded " << os.foldedConstants
                  << ", simplified " << os.simplifiedBranches
                  << " branches, removed " << os.removedBlocks
                  << " blocks / " << os.removedInstructions
                  << " insts\n";
        ir::verifyOrDie(*mod);
    }
    if (unroll >= 2) {
        unsigned n = 0;
        for (const auto &f : mod->functions())
            n += hls::unrollSerialLoops(*f, *mod,
                                        hls::UnrollOptions{unroll});
        std::cout << "unroll: " << n << " loops by " << unroll
                  << "x\n";
        ir::verifyOrDie(*mod);
    }

    ir::Function *top = nullptr;
    if (!top_name.empty()) {
        top = mod->functionByName(top_name);
        if (!top)
            tapas_fatal("no function '@%s'", top_name.c_str());
    } else {
        for (const auto &f : mod->functions()) {
            if (f->hasDetach()) {
                top = f.get();
                break;
            }
        }
        if (!top && !mod->functions().empty())
            top = mod->functions().front().get();
        if (!top)
            tapas_fatal("module has no functions");
    }

    arch::AcceleratorParams params;
    params.defaults.ntiles = tiles;
    params.defaults.ntasks = ntasks;
    auto design = hls::compile(*mod, top, params);

    if (report) {
        std::cout << "top: @" << top->name() << "\n\ntask graph:\n";
        for (const auto &t : design->taskGraph->tasks()) {
            std::cout << "  T" << t->sid() << "  " << t->name()
                      << "  (" << t->numInstructions() << " insts, "
                      << t->numMemOps() << " mem, "
                      << t->args().size() << " args"
                      << (t->isRecursive() ? ", recursive" : "")
                      << ")\n";
        }
        for (const fpga::Device &dev :
             {fpga::Device::cycloneV(), fpga::Device::arria10()}) {
            fpga::ResourceReport r =
                fpga::estimateResources(*design, dev);
            std::cout << "\n" << dev.name << ": " << r.alms
                      << " ALMs, " << r.regs << " regs, " << r.brams
                      << " M20K, " << strfmt("%.0f", r.fmaxMhz)
                      << " MHz, " << strfmt("%.2f", r.powerW)
                      << " W (" << strfmt("%.0f%%",
                                          r.utilization * 100)
                      << " of chip)\n";
        }
    }

    if (!chisel_path.empty())
        writeOut(chisel_path, codegen::chiselString(*design));

    if (!dot_path.empty()) {
        std::ostringstream os;
        codegen::emitTaskGraphDot(*design->taskGraph, os);
        writeOut(dot_path, os.str());
    }

    if (do_run || do_interp) {
        if (run_args.size() != top->numArgs()) {
            tapas_fatal("@%s takes %u arguments, %zu given",
                        top->name().c_str(), top->numArgs(),
                        run_args.size());
        }
        ir::MemImage mem(256ull << 20);
        mem.layout(*mod);
        std::vector<ir::RtValue> args;
        for (unsigned i = 0; i < top->numArgs(); ++i) {
            args.push_back(parseArg(run_args[i],
                                    top->arg(i)->type(), *mod, mem));
        }

        if (do_interp) {
            ir::Interp interp(*mod, mem);
            ir::RtValue ret = interp.run(*top, args);
            std::cout << "interp: " << interp.stats().totalInsts
                      << " insts, " << interp.stats().spawns
                      << " spawns";
            if (!top->returnType().isVoid()) {
                std::cout << ", returned "
                          << (top->returnType().isFloat()
                                  ? strfmt("%g", ret.f)
                                  : strfmt("%lld",
                                           static_cast<long long>(
                                               ret.i)));
            }
            std::cout << "\n";
        }
        if (do_run) {
            sim::AcceleratorSim accel(*design, mem);
            sim::TaskTracer tracer;
            if (!trace_path.empty())
                accel.setTracer(&tracer);
            ir::RtValue ret = accel.run(args);
            if (!trace_path.empty()) {
                std::ostringstream os;
                tracer.dumpCsv(os);
                writeOut(trace_path, os.str());
            }
            std::cout << "accel: " << accel.cycles() << " cycles, "
                      << accel.totalSpawns() << " spawns, "
                      << strfmt("%.1f%%",
                                accel.cacheModel().hitRate() * 100)
                      << " cache hits";
            if (!top->returnType().isVoid()) {
                std::cout << ", returned "
                          << (top->returnType().isFloat()
                                  ? strfmt("%g", ret.f)
                                  : strfmt("%lld",
                                           static_cast<long long>(
                                               ret.i)));
            }
            std::cout << "\n";
        }
    }
    return 0;
}
