#!/usr/bin/env python3
"""Normalize a tapas JSON export for byte-level comparison.

The JSON exports are deterministic for a fixed input — same cycles,
same Pareto frontier, same row order — except for two kinds of keys
that intentionally record wall-clock facts about the producing run:

  manifest          which binary ran, with what argv, how many jobs
  compile_timings   host seconds per toolchain stage
  host_seconds      wall-clock timings from the throughput bench
  sim_khz           derived from host_seconds
  events_per_sec    derived from host_seconds
  scheduler         which cycle-loop policy (scan/event) produced a
                    row — a host-side label; modeled content must be
                    byte-identical across schedulers, which is
                    exactly what the CI scheduler-equivalence diff
                    checks by stripping it
  lowering          whether a row ran from the ahead-of-time micro-op
                    tables or the legacy IR walkers — same contract:
                    modeled content must be byte-identical across the
                    two engines (the CI lowering-equivalence diff)

(Modelled "seconds" fields — simulated cycles over Fmax — are
deterministic and deliberately NOT stripped.)

Byte-diffing two runs (serial vs parallel sweep, interrupted+resumed
vs uninterrupted) must ignore exactly those keys and nothing else.
This script removes them recursively and re-dumps the document with
sorted keys, so

  strip_volatile.py a.json > a.norm
  strip_volatile.py b.json > b.norm
  diff a.norm b.norm

is a semantic comparison. Used by the CI interruption smoke job; handy
manually when chasing a nondeterminism report.

Usage: strip_volatile.py FILE [FILE...]   (or - for stdin)
With multiple FILEs, output is concatenated in order.
"""

import json
import sys

VOLATILE_KEYS = {
    "manifest",
    "compile_timings",
    "host_seconds",
    "sim_khz",
    "events_per_sec",
    "scheduler",
    "lowering",
}


def strip(node):
    if isinstance(node, dict):
        return {k: strip(v) for k, v in node.items()
                if k not in VOLATILE_KEYS}
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node


def main():
    paths = sys.argv[1:]
    if not paths:
        sys.exit(f"usage: {sys.argv[0]} FILE [FILE...]  (- for stdin)")
    for path in paths:
        if path == "-":
            doc = json.load(sys.stdin)
        else:
            with open(path) as f:
                doc = json.load(f)
        json.dump(strip(doc), sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
