#!/usr/bin/env bash
# Lowering-equivalence smoke: the full tapas-cc --json document must
# be byte-identical between the lowered engine (default) and the
# legacy IR walkers (TAPAS_NO_LOWERING=1) once the volatile host-side
# keys are stripped (tools/strip_volatile.py). This is the end-to-end
# leg of the differential suite in tests/sim_lower_test.cc: it covers
# the JSON renderer and every stat the document flattens, not just
# RunResult::equals.
#
# Usage: lowering_equiv_test.sh <tapas-cc-binary> <source-dir>
set -euo pipefail

cc="$1"
src="$2"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run_case() {
    local name="$1"; shift
    "$cc" "$@" --json "$tmp/$name.low.json" >/dev/null
    TAPAS_NO_LOWERING=1 \
        "$cc" "$@" --json "$tmp/$name.leg.json" >/dev/null
    python3 "$src/tools/strip_volatile.py" "$tmp/$name.low.json" \
        > "$tmp/$name.low.norm"
    python3 "$src/tools/strip_volatile.py" "$tmp/$name.leg.json" \
        > "$tmp/$name.leg.norm"
    if ! diff -u "$tmp/$name.leg.norm" "$tmp/$name.low.norm"; then
        echo "FAIL: $name: lowered vs legacy JSON diverged" >&2
        exit 1
    fi
    echo "ok: $name"
}

run_case vector_scale "$src/examples/vector_scale.tir" \
    --opt --run @vec 64
run_case parallel_fib "$src/examples/parallel_fib.tir" \
    --ntasks 2048 --run 12
echo "lowering equivalence: all cases byte-identical"
