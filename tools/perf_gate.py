#!/usr/bin/env python3
"""Simulation-throughput regression gate.

Compares a fresh `bench/sim_throughput --json` report against the
checked-in baseline (BENCH_simspeed.json at the repo root) row by row,
keyed on (workload, tiles). The metric is simulated KHz — simulated
cycles per wall-clock second — so it tracks simulator speed, not
workload behavior. Cycle counts are also cross-checked exactly: a
cycle drift means the simulator's *timing model* changed, which is a
different (and worse) kind of regression than running slowly.

Two thresholds, expressed as current/baseline ratios:

  --warn-below R   print a warning for rows slower than R x baseline
                   (default 0.8); never affects the exit code.
  --fail-below R   exit 1 for rows slower than R x baseline (default
                   1/3, catching order-of-magnitude regressions while
                   tolerating noisy shared CI runners).

events_per_sec (simulation events retired per wall-clock second) is
checked against the same --warn-below ratio, warn-only: it measures
event-processing efficiency rather than end-to-end speed (idle-cycle
skipping can change sim_khz without touching it), so a drop is worth
a look but never fails the gate by itself.

Usage:
  build/bench/sim_throughput --json current.json
  tools/perf_gate.py --baseline BENCH_simspeed.json current.json
"""

import argparse
import json
import os
import sys


def load_rows(path):
    """Map (workload, tiles) -> row dict from a sim_throughput report."""
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("rows", [])
    if not rows:
        sys.exit(f"error: {path} has no benchmark rows")
    out = {}
    for r in rows:
        if "workload" not in r or "tiles" not in r:
            print(f"  warn: {path} has a row without workload/tiles "
                  "keys; skipped")
            continue
        out[(r["workload"], r["tiles"])] = r
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="fresh sim_throughput --json report")
    ap.add_argument("--baseline", default="BENCH_simspeed.json",
                    help="checked-in baseline report (default: %(default)s)")
    ap.add_argument("--warn-below", type=float, default=0.8, metavar="R",
                    help="warn when sim_khz < R x baseline (default: %(default)s)")
    ap.add_argument("--fail-below", type=float, default=1 / 3, metavar="R",
                    help="fail when sim_khz < R x baseline (default: 1/3)")
    args = ap.parse_args()

    # A missing baseline is not a regression: first run on a fresh
    # branch, renamed file, or a deliberately dropped baseline. Warn
    # so the log shows the gate did not actually compare anything,
    # but let the build pass.
    if not os.path.exists(args.baseline):
        print(f"perf gate: warning: baseline '{args.baseline}' not "
              "found; nothing to compare, passing")
        return 0

    base = load_rows(args.baseline)
    cur = load_rows(args.current)

    failed = False
    print(f"{'workload':<12} {'tiles':>5} {'base_khz':>10} {'cur_khz':>10} "
          f"{'ratio':>7}  status")
    for key, b in sorted(base.items()):
        c = cur.get(key)
        name = f"{key[0]} x{key[1]}"
        if c is None:
            print(f"  missing row for {name} in current report")
            failed = True
            continue
        if "cycles" not in b or "sim_khz" not in b:
            # A baseline row without the gated metrics cannot fail
            # anything — warn so the hole is visible, keep going.
            print(f"  warn: baseline row {name} lacks cycles/sim_khz;"
                  " skipped")
            continue
        if c["cycles"] != b["cycles"]:
            print(f"  CYCLE DRIFT on {name}: baseline {b['cycles']} vs "
                  f"current {c['cycles']} — timing model changed; "
                  "re-baseline deliberately or fix the regression")
            failed = True
        ratio = c["sim_khz"] / b["sim_khz"] if b["sim_khz"] else float("inf")
        if ratio < args.fail_below:
            status = "FAIL"
            failed = True
        elif ratio < args.warn_below:
            status = "warn"
        else:
            status = "ok"
        print(f"{key[0]:<12} {key[1]:>5} {b['sim_khz']:>10.1f} "
              f"{c['sim_khz']:>10.1f} {ratio:>6.2f}x  {status}")
        b_eps = b.get("events_per_sec")
        c_eps = c.get("events_per_sec")
        if b_eps and c_eps is not None:
            eps_ratio = c_eps / b_eps
            if eps_ratio < args.warn_below:
                print(f"  warn: {name} events_per_sec {c_eps:.3g} is "
                      f"{eps_ratio:.2f}x baseline {b_eps:.3g}")

    for key in sorted(set(cur) - set(base)):
        print(f"  note: {key[0]} x{key[1]} present only in current report")

    if failed:
        print("perf gate: FAIL")
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
