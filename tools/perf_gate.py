#!/usr/bin/env python3
"""Simulation-throughput regression gate.

Compares a fresh `bench/sim_throughput --json` report against the
checked-in baseline (BENCH_simspeed.json at the repo root) row by row,
keyed on (workload, scheduler, lowering, tiles) — rows lacking a
scheduler or lowering key (older baselines) key on "" for the missing
field and still match a current report without one. The metric is simulated KHz —
simulated cycles per wall-clock second — so it tracks simulator
speed, not workload behavior. Cycle counts are also cross-checked
exactly: a cycle drift means the simulator's *timing model* changed,
which is a different (and worse) kind of regression than running
slowly.

Two thresholds, expressed as current/baseline ratios:

  --warn-below R   print a warning for rows slower than R x baseline
                   (default 0.9); never affects the exit code.
  --fail-below R   exit 1 for rows slower than R x baseline (default
                   0.75: a >25% sim_khz regression is a hard failure).

events_per_sec (simulation events retired per wall-clock second) is
checked against the same --warn-below ratio, warn-only: it measures
event-processing efficiency rather than end-to-end speed (idle-cycle
skipping can change sim_khz without touching it), so a drop is worth
a look but never fails the gate by itself.

--update-baseline rewrites the baseline file from the current report
(after printing the comparison), for deliberate re-baselining after
a known simulator change; the gate then always passes.

Usage:
  build/bench/sim_throughput --json current.json
  tools/perf_gate.py --baseline BENCH_simspeed.json current.json
  tools/perf_gate.py --update-baseline current.json   # re-baseline
"""

import argparse
import json
import os
import sys


def load_rows(path):
    """Map (workload, scheduler, lowering, tiles) -> row dict."""
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("rows", [])
    if not rows:
        sys.exit(f"error: {path} has no benchmark rows")
    out = {}
    for r in rows:
        if "workload" not in r or "tiles" not in r:
            print(f"  warn: {path} has a row without workload/tiles "
                  "keys; skipped")
            continue
        out[(r["workload"], r.get("scheduler", ""),
             r.get("lowering", ""), r["tiles"])] = r
    return out


def row_label(key):
    workload, scheduler, lowering, _tiles = key
    label = workload
    if scheduler:
        label += f"/{scheduler}"
    if lowering:
        label += f"/low={lowering}"
    return label


def row_name(key):
    return f"{row_label(key)} x{key[3]}"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="fresh sim_throughput --json report")
    ap.add_argument("--baseline", default="BENCH_simspeed.json",
                    help="checked-in baseline report (default: %(default)s)")
    ap.add_argument("--warn-below", type=float, default=0.9, metavar="R",
                    help="warn when sim_khz < R x baseline (default: %(default)s)")
    ap.add_argument("--fail-below", type=float, default=0.75, metavar="R",
                    help="fail when sim_khz < R x baseline (default: %(default)s)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from the current report "
                         "after comparing (gate always passes)")
    args = ap.parse_args()

    # A missing baseline is not a regression: first run on a fresh
    # branch, renamed file, or a deliberately dropped baseline. Warn
    # so the log shows the gate did not actually compare anything,
    # but let the build pass (and honor --update-baseline).
    if not os.path.exists(args.baseline):
        print(f"perf gate: warning: baseline '{args.baseline}' not "
              "found; nothing to compare, passing")
        if args.update_baseline:
            update_baseline(args.current, args.baseline)
        return 0

    base = load_rows(args.baseline)
    cur = load_rows(args.current)

    failed = False
    print(f"{'row':<22} {'tiles':>5} {'base_khz':>10} {'cur_khz':>10} "
          f"{'ratio':>7}  status")
    for key, b in sorted(base.items(), key=lambda kv: repr(kv[0])):
        c = cur.get(key)
        name = row_name(key)
        if c is None:
            print(f"  missing row for {name} in current report")
            failed = True
            continue
        if "cycles" not in b or "sim_khz" not in b:
            # A baseline row without the gated metrics cannot fail
            # anything — warn so the hole is visible, keep going.
            print(f"  warn: baseline row {name} lacks cycles/sim_khz;"
                  " skipped")
            continue
        if c["cycles"] != b["cycles"]:
            print(f"  CYCLE DRIFT on {name}: baseline {b['cycles']} vs "
                  f"current {c['cycles']} — timing model changed; "
                  "re-baseline deliberately or fix the regression")
            failed = True
        ratio = c["sim_khz"] / b["sim_khz"] if b["sim_khz"] else float("inf")
        if ratio < args.fail_below:
            status = "FAIL"
            failed = True
        elif ratio < args.warn_below:
            status = "warn"
        else:
            status = "ok"
        label = row_label(key)
        print(f"{label:<22} {key[3]:>5} {b['sim_khz']:>10.1f} "
              f"{c['sim_khz']:>10.1f} {ratio:>6.2f}x  {status}")
        b_eps = b.get("events_per_sec")
        c_eps = c.get("events_per_sec")
        if b_eps and c_eps is not None:
            eps_ratio = c_eps / b_eps
            if eps_ratio < args.warn_below:
                print(f"  warn: {name} events_per_sec {c_eps:.3g} is "
                      f"{eps_ratio:.2f}x baseline {b_eps:.3g}")

    for key in sorted(set(cur) - set(base), key=repr):
        print(f"  note: {row_name(key)} present only in current report")

    if args.update_baseline:
        update_baseline(args.current, args.baseline)
        print("perf gate: baseline updated, passing")
        return 0
    if failed:
        print("perf gate: FAIL")
        return 1
    print("perf gate: ok")
    return 0


def update_baseline(current_path, baseline_path):
    """Copy the current report over the baseline, dropping the
    volatile run manifest so the checked-in file stays stable."""
    with open(current_path) as f:
        doc = json.load(f)
    doc.pop("manifest", None)
    tmp = baseline_path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=False)
        f.write("\n")
    os.replace(tmp, baseline_path)
    print(f"perf gate: wrote {baseline_path} from {current_path}")


if __name__ == "__main__":
    sys.exit(main())
