/**
 * @file
 * Nested parallel/serial loops example (paper Fig. 10): the stencil
 * kernel, swept over tile counts to show per-task-unit scaling — the
 * knob Stage 3 exposes (paper Section III-D).
 *
 * Build & run:  ./build/examples/nested_stencil
 */

#include <iostream>

#include "fpga/model.hh"
#include "sim/accel.hh"
#include "support/table.hh"
#include "workloads/workload.hh"

using namespace tapas;

int
main()
{
    const unsigned kRows = 32;
    const unsigned kCols = 32;
    const unsigned kNbr = 2;

    std::cout << "stencil " << kRows << "x" << kCols
              << ", neighbourhood +/-" << kNbr
              << " (parallel outer loop, serial inner loops)\n\n";

    TextTable table;
    table.header({"tiles", "cycles", "speedup", "ALMs", "fmax(MHz)",
                  "cells/kcycle"});

    uint64_t base_cycles = 0;
    for (unsigned tiles : {1u, 2u, 4u, 8u}) {
        auto w = workloads::makeStencil(kRows, kCols, kNbr);
        arch::AcceleratorParams p = w.params;
        p.setAllTiles(tiles);
        auto design = hls::compile(*w.module, w.top, p);

        ir::MemImage mem(64 << 20);
        auto args = w.setup(mem);
        sim::AcceleratorSim accel(*design, mem);
        accel.run(args);
        std::string err = w.verify(mem, ir::RtValue());
        if (!err.empty()) {
            std::cerr << "verification failed: " << err << "\n";
            return 1;
        }
        if (tiles == 1)
            base_cycles = accel.cycles();

        fpga::ResourceReport rep =
            fpga::estimateResources(*design, fpga::Device::cycloneV());
        double cells = static_cast<double>(kRows) * kCols;
        table.row({std::to_string(tiles),
                   std::to_string(accel.cycles()),
                   strfmt("%.2fx", static_cast<double>(base_cycles) /
                                       accel.cycles()),
                   std::to_string(rep.alms),
                   strfmt("%.0f", rep.fmaxMhz),
                   strfmt("%.1f",
                          cells / (accel.cycles() / 1000.0))});
    }
    table.print(std::cout);
    std::cout << "\nEvery configuration computed the identical, "
                 "verified result.\n";
    return 0;
}
