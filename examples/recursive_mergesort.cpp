/**
 * @file
 * Recursive parallelism example (paper Section IV-C): mergesort
 * spawning itself, with the accelerator's task queues absorbing the
 * recursion. Also writes the generated Chisel and Graphviz files.
 *
 * Build & run:  ./build/examples/recursive_mergesort
 */

#include <fstream>
#include <iostream>

#include "codegen/chisel.hh"
#include "sim/accel.hh"
#include "workloads/workload.hh"

using namespace tapas;

int
main()
{
    const unsigned kN = 2048;
    const unsigned kCutoff = 64;

    auto w = workloads::makeMergeSort(kN, kCutoff);
    auto design = hls::compile(*w.module, w.top, w.params);

    std::cout << "mergesort n=" << kN << " cutoff=" << kCutoff
              << "\n\n=== Task graph ===\n";
    for (const auto &t : design->taskGraph->tasks()) {
        std::cout << "  T" << t->sid() << "  " << t->name()
                  << (t->isRecursive() ? "  [recursive]" : "")
                  << "  queue=" <<
            design->params.forTask(t->sid()).ntasks << "\n";
    }

    ir::MemImage mem(128 << 20);
    auto args = w.setup(mem);
    sim::AcceleratorSim accel(*design, mem);
    accel.run(args);

    std::string err = w.verify(mem, ir::RtValue());
    std::cout << "\nresult: "
              << (err.empty() ? "sorted CORRECTLY" : err) << "\n"
              << "cycles: " << accel.cycles() << "\n"
              << "task instances: " << accel.totalSpawns() << "\n";
    for (const auto &t : design->taskGraph->tasks()) {
        auto &u = accel.unit(t->sid());
        std::cout << "  T" << t->sid() << " spawns="
                  << u.spawnsAccepted.value()
                  << " sync_suspends=" << u.syncSuspends.value()
                  << " call_suspends=" << u.callSuspends.value()
                  << "\n";
    }

    // Emit the hardware artifacts.
    {
        std::ofstream f("mergesort_accel.scala");
        codegen::emitChisel(*design, f);
        std::ofstream g("mergesort_tasks.dot");
        codegen::emitTaskGraphDot(*design->taskGraph, g);
        std::cout << "\nwrote mergesort_accel.scala and "
                     "mergesort_tasks.dot\n";
    }
    return err.empty() ? 0 : 1;
}
