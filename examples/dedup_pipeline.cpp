/**
 * @file
 * Dynamic pipeline example (paper Fig. 1): the dedup benchmark's
 * conditional, heterogeneous task pipeline, run on the simulated
 * accelerator and on the modelled i7, with per-stage statistics.
 *
 * Build & run:  ./build/examples/dedup_pipeline
 */

#include <iostream>

#include "cpu/multicore.hh"
#include "fpga/model.hh"
#include "sim/accel.hh"
#include "workloads/workload.hh"

using namespace tapas;

int
main()
{
    const unsigned kChunks = 48;
    const unsigned kChunkSize = 256;

    auto w = workloads::makeDedup(kChunks, kChunkSize);
    std::cout << "dedup: " << kChunks << " chunks x " << kChunkSize
              << " B (challenge: " << w.challenge << ")\n\n";

    arch::AcceleratorParams params = w.params;
    params.setAllTiles(2);
    auto design = hls::compile(*w.module, w.top, params);

    std::cout << "=== Pipeline task units ===\n";
    for (const auto &t : design->taskGraph->tasks()) {
        std::cout << "  S" << t->sid() << "  " << t->name() << " ("
                  << t->numInstructions() << " insts, "
                  << t->numMemOps() << " mem ops)\n";
    }

    // --- accelerator run ----------------------------------------------
    ir::MemImage mem(64 << 20);
    auto args = w.setup(mem);
    sim::AcceleratorSim accel(*design, mem);
    accel.run(args);
    std::string err = w.verify(mem, ir::RtValue());
    std::cout << "\naccelerator: "
              << (err.empty() ? "output CORRECT" : err) << ", "
              << accel.cycles() << " cycles\n";

    std::cout << "per-stage instances (conditional stage skips "
              << "duplicates):\n";
    for (const auto &t : design->taskGraph->tasks()) {
        std::cout << "  S" << t->sid() << " "
                  << accel.unit(t->sid()).instancesDone.value()
                  << " instances\n";
    }

    // --- i7 baseline ----------------------------------------------------
    auto w2 = workloads::makeDedup(kChunks, kChunkSize);
    ir::MemImage mem2(64 << 20);
    auto args2 = w2.setup(mem2);
    cpu::CpuRunResult i7 = cpu::runOnCpu(
        *w2.module, *w2.top, args2, mem2, cpu::CpuParams::intelI7());

    fpga::ResourceReport rep =
        fpga::estimateResources(*design, fpga::Device::cycloneV());
    double accel_s = accel.seconds(rep.fmaxMhz);

    std::cout << "\n=== TAPAS (Cyclone V @" << rep.fmaxMhz
              << " MHz) vs i7 quad ===\n"
              << "  accelerator: " << accel_s * 1e6 << " us, "
              << rep.powerW << " W\n"
              << "  i7 (4 cores): " << i7.seconds * 1e6 << " us, "
              << fpga::kIntelI7PowerW << " W\n"
              << "  speedup:      " << i7.seconds / accel_s << "x\n"
              << "  perf/watt:    "
              << (i7.seconds / accel_s) *
                     (fpga::kIntelI7PowerW / rep.powerW)
              << "x\n";
    return err.empty() ? 0 : 1;
}
