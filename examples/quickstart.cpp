/**
 * @file
 * Quickstart: the complete TAPAS flow on a tiny parallel kernel.
 *
 *   1. write a parallel program against the IR builder (a cilk_for
 *      that scales a vector);
 *   2. run the TAPAS HLS toolchain (task extraction -> dataflow ->
 *      parameter binding);
 *   3. simulate the generated accelerator cycle by cycle;
 *   4. check the output and look at the stats and the generated
 *      Chisel.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "codegen/chisel.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "sim/accel.hh"
#include "workloads/loops.hh"

using namespace tapas;

int
main()
{
    // ---- 1. Write a parallel program -------------------------------
    ir::Module mod;
    ir::IRBuilder b(mod);

    const unsigned kN = 1024;
    ir::GlobalVar *vec = mod.addGlobal("vec", 4 * kN);

    ir::Function *top = mod.addFunction(
        "scale3", ir::Type::voidTy(),
        {{ir::Type::ptr(), "a"}, {ir::Type::i64(), "n"}});

    b.setInsertPoint(top->addBlock("entry"));
    workloads::buildCilkFor(
        b, b.constI64(0), top->arg(1), "i",
        [&](ir::IRBuilder &bi, ir::Value *i) {
            // a[i] = 3 * a[i]   -- each iteration is a spawned task
            ir::Value *addr = bi.createGep(top->arg(0), 4, i);
            ir::Value *v =
                bi.createLoad(ir::Type::i32(), addr, "v");
            ir::Value *scaled =
                bi.createMul(v, mod.constInt(ir::Type::i32(), 3));
            bi.createStore(scaled, addr);
        });
    b.createRet();

    ir::verifyOrDie(mod);
    std::cout << "=== Parallel IR ===\n"
              << ir::toString(*top) << "\n";

    // ---- 2. TAPAS HLS ------------------------------------------------
    auto design = hls::compile(mod, top);
    std::cout << "=== Task graph ===\n";
    for (const auto &t : design->taskGraph->tasks()) {
        std::cout << "  T" << t->sid() << "  " << t->name() << "  ("
                  << t->numInstructions() << " insts, "
                  << t->args().size() << " args";
        if (t->parent())
            std::cout << ", spawned by T" << t->parent()->sid();
        std::cout << ")\n";
    }

    // ---- 3. Simulate the accelerator --------------------------------
    ir::MemImage mem(16 << 20);
    mem.layout(mod);
    uint64_t base = mem.addressOf(vec);
    for (unsigned i = 0; i < kN; ++i)
        mem.put<int32_t>(base + 4 * i, static_cast<int32_t>(i));

    sim::AcceleratorSim accel(*design, mem);
    accel.run({ir::RtValue::fromPtr(base), ir::RtValue::fromInt(kN)});

    // ---- 4. Check + report ------------------------------------------
    bool ok = true;
    for (unsigned i = 0; i < kN; ++i) {
        if (mem.get<int32_t>(base + 4 * i) !=
            3 * static_cast<int32_t>(i)) {
            ok = false;
        }
    }
    std::cout << "\n=== Simulation ===\n"
              << "  result:        " << (ok ? "CORRECT" : "WRONG")
              << "\n  cycles:        " << accel.cycles()
              << "\n  tasks spawned: " << accel.totalSpawns()
              << "\n  cycles/task:   "
              << static_cast<double>(accel.cycles()) / kN
              << "\n  cache hit rate: "
              << accel.cacheModel().hitRate() * 100.0 << "%\n";

    std::cout << "\n=== Generated Chisel (head) ===\n";
    std::string chisel = codegen::chiselString(*design);
    std::cout << chisel.substr(0, 1200) << "...\n("
              << chisel.size() << " bytes total)\n";
    return ok ? 0 : 1;
}
